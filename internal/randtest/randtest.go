// Package randtest implements the random-testing baseline of Martignoni et
// al. [ISSTA'09/'10], the prior state of the art the paper compares against
// (Section 8): byte sequences generated at random and validated against a
// CPU oracle, executed from randomly fuzzed register states, with the same
// three-way comparison. It exists to reproduce the paper's claim that many
// PokeEMU findings (cross-page orderings, atomicity-on-fault, precise
// limit checks) have vanishingly small probability under random testing.
package randtest

import (
	"math/rand"

	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/machine"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
)

// Config scopes a random-testing run.
type Config struct {
	Tests int
	Seed  int64
	// FuzzState randomizes registers and flags before the test instruction
	// (the ISSTA'09 setup); otherwise the baseline state is used.
	FuzzState bool
}

// Result aggregates the run.
type Result struct {
	Generated  int // random byte sequences tried
	Valid      int // accepted by the decode oracle
	Executed   int // test programs run
	DiffTests  int // tests with any filtered difference vs hardware
	RootCauses map[string]int
}

// Run executes the random-testing baseline.
func Run(cfg Config) *Result {
	r := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{RootCauses: make(map[string]int)}
	image := machine.BaselineImage()
	boot := testgen.BaselineInit()
	fiF := harness.FidelisFactory()
	ceF := harness.CelerFactory()
	hwF := harness.HardwareFactory()

	for res.Executed < cfg.Tests {
		// Random instruction generation, validated by the decode oracle
		// (the "CPU as a black-box correctness oracle" of the prior work).
		raw := make([]byte, x86.MaxInstLen)
		for i := range raw {
			raw[i] = byte(r.Intn(256))
		}
		res.Generated++
		inst, err := x86.Decode(raw)
		if err != nil {
			continue
		}
		res.Valid++

		var prog []byte
		if cfg.FuzzState {
			// Randomized register state: mov r, imm32 for each register,
			// and a random EFLAGS image via push/popf.
			for reg := x86.EAX; reg <= x86.EDI; reg++ {
				v := uint32(r.Uint64())
				if reg == x86.ESP && r.Intn(4) != 0 {
					// Keep the stack usually sane, as the prior work did.
					v = machine.StackTop
				}
				prog = append(prog, x86.AsmMovRegImm32(reg, v)...)
			}
			fl := uint32(r.Uint64())&x86.StatusFlags | x86.EflagsFixed1 | 1<<x86.FlagIF
			prog = append(prog, x86.AsmPushImm32(fl)...)
			prog = append(prog, x86.AsmPopf()...)
		}
		prog = append(prog, inst.Raw...)
		prog = append(prog, x86.AsmHlt()...)

		fi := harness.RunBoot(fiF, image, boot, prog, 0)
		ce := harness.RunBoot(ceF, image, boot, prog, 0)
		hw := harness.RunBoot(hwF, image, boot, prog, 0)
		res.Executed++

		filter := diff.UndefFilterFor(inst.Spec.Name)
		found := false
		if ds := diff.Compare(hw.Snapshot, ce.Snapshot, filter); len(ds) > 0 {
			found = true
			d := &diff.Difference{
				TestID: "rand", Handler: inst.Spec.Name, Mnemonic: inst.Spec.Mn,
				ImplA: "hardware", ImplB: "celer", Fields: ds,
			}
			res.RootCauses[diff.RootCause(d)]++
		}
		if ds := diff.Compare(hw.Snapshot, fi.Snapshot, filter); len(ds) > 0 {
			found = true
			d := &diff.Difference{
				TestID: "rand", Handler: inst.Spec.Name, Mnemonic: inst.Spec.Mn,
				ImplA: "hardware", ImplB: "fidelis", Fields: ds,
			}
			res.RootCauses[diff.RootCause(d)]++
		}
		if found {
			res.DiffTests++
		}
	}
	return res
}

// FindsCause reports whether the run discovered the given root-cause class.
func (r *Result) FindsCause(cause string) bool {
	return r.RootCauses[cause] > 0
}
