package x86

import (
	"fmt"
	"strings"
)

// Disasm renders a decoded instruction in AT&T-style syntax (operands in
// source, destination order reversed from the spec's Intel-order template).
// It is used by the CLI and examples to display test instructions, and the
// round trip through Decode is covered by tests.
func Disasm(i *Inst) string {
	if i.Spec == nil {
		return "(bad)"
	}
	var ops []string
	for _, k := range i.Spec.Operands {
		ops = append(ops, operandString(i, k))
	}
	// AT&T reverses Intel operand order.
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	var b strings.Builder
	if i.Lock {
		b.WriteString("lock ")
	}
	if i.Rep {
		b.WriteString("rep ")
	}
	if i.RepNE {
		b.WriteString("repne ")
	}
	b.WriteString(i.Spec.Mn)
	if len(ops) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}

func operandString(i *Inst, k OperandKind) string {
	vSuffix := func(w int) string {
		if i.OpSize == 16 {
			return reg16Name(uint8(w))
		}
		return "%" + regNames[w]
	}
	switch k {
	case OpdRM8:
		if i.IsRegForm() {
			return "%" + Reg8Name(i.RM())
		}
		return memString(i)
	case OpdRMv:
		if i.IsRegForm() {
			return vSuffix(int(i.RM()))
		}
		return memString(i)
	case OpdRM16:
		if i.IsRegForm() {
			return reg16Name(i.RM())
		}
		return memString(i)
	case OpdR8:
		return "%" + Reg8Name(i.RegField())
	case OpdRv:
		return vSuffix(int(i.RegField()))
	case OpdSreg:
		// Encodings with reg 6/7 decode (the semantics raise #UD when
		// executed, like hardware), so render them without panicking.
		if r := i.RegField(); r < NumSegRegs {
			return "%" + SegReg(r).String()
		}
		return fmt.Sprintf("%%sreg%d", i.RegField())
	case OpdCRn:
		return fmt.Sprintf("%%cr%d", i.RegField())
	case OpdM:
		return memString(i)
	case OpdImm8, OpdImm8s, OpdImm16, OpdImmv:
		return fmt.Sprintf("$0x%x", i.Imm)
	case OpdRel8, OpdRelv:
		return fmt.Sprintf(".%+d", relValue(i))
	case OpdAL:
		return "%al"
	case OpdEAXv:
		if i.OpSize == 16 {
			return "%ax"
		}
		return "%eax"
	case OpdCL:
		return "%cl"
	case OpdOne:
		return "$1"
	case OpdRegOp8:
		return "%" + Reg8Name(i.Opcode&7)
	case OpdRegOpv:
		return vSuffix(int(i.Opcode & 7))
	case OpdMoffs8, OpdMoffsv:
		return fmt.Sprintf("%s0x%x", segPrefix(i), i.Disp)
	case OpdSegES:
		return "%es"
	case OpdSegCS:
		return "%cs"
	case OpdSegSS:
		return "%ss"
	case OpdSegDS:
		return "%ds"
	case OpdSegFS:
		return "%fs"
	case OpdSegGS:
		return "%gs"
	}
	return "?"
}

var reg16Names = [...]string{"%ax", "%cx", "%dx", "%bx", "%sp", "%bp", "%si", "%di"}

func reg16Name(i uint8) string { return reg16Names[i&7] }

func relValue(i *Inst) int32 {
	if i.ImmSize == 1 {
		return int32(int8(i.Imm)) + int32(i.Len)
	}
	return int32(i.Imm) + int32(i.Len)
}

func segPrefix(i *Inst) string {
	if i.SegOverride < 0 {
		return ""
	}
	return "%" + SegReg(i.SegOverride).String() + ":"
}

// memString renders a ModRM memory operand.
func memString(i *Inst) string {
	var b strings.Builder
	b.WriteString(segPrefix(i))
	mod, rm := i.Mod(), i.RM()
	if i.DispSize > 0 || (mod == 0 && (rm == 5 || (rm == 4 && i.SIB&7 == 5))) {
		fmt.Fprintf(&b, "0x%x", i.Disp)
	}
	var base, index string
	scale := 1
	switch {
	case rm == 4:
		sib := i.SIB
		if !(sib&7 == 5 && mod == 0) {
			base = "%" + regNames[sib&7]
		}
		if sib>>3&7 != 4 {
			index = "%" + regNames[sib>>3&7]
			scale = 1 << (sib >> 6)
		}
	case mod == 0 && rm == 5:
		// disp32 only
	default:
		base = "%" + regNames[rm]
	}
	if base != "" || index != "" {
		b.WriteByte('(')
		b.WriteString(base)
		if index != "" {
			fmt.Fprintf(&b, ",%s,%d", index, scale)
		}
		b.WriteByte(')')
	}
	return b.String()
}
