package x86

import "testing"

func TestDisasm(t *testing.T) {
	cases := []struct {
		bytes []byte
		want  string
	}{
		{[]byte{0x90}, "nop"},
		{[]byte{0xf4}, "hlt"},
		{[]byte{0x01, 0xd8}, "add %ebx, %eax"},
		{[]byte{0x66, 0x01, 0xd8}, "add %bx, %ax"},
		{[]byte{0x83, 0xc1, 0x05}, "add $0x5, %ecx"},
		{[]byte{0x8b, 0x04, 0xb3}, "mov (%ebx,%esi,4), %eax"},
		{[]byte{0x8b, 0x44, 0x24, 0x08}, "mov 0x8(%esp), %eax"},
		{[]byte{0x8b, 0x05, 0x78, 0x56, 0x34, 0x12}, "mov 0x12345678, %eax"},
		{[]byte{0x64, 0x8b, 0x03}, "mov %fs:(%ebx), %eax"},
		{[]byte{0x50}, "push %eax"},
		{[]byte{0x5f}, "pop %edi"},
		{[]byte{0x8e, 0xd0}, "mov %ax, %ss"},
		{[]byte{0x0f, 0x22, 0xc0}, "mov %eax, %cr0"},
		{[]byte{0x0f, 0xb1, 0x0b}, "cmpxchg %ecx, (%ebx)"},
		{[]byte{0xd1, 0xe0}, "shl $1, %eax"},
		{[]byte{0xd3, 0xe8}, "shr %cl, %eax"},
		{[]byte{0xf0, 0x01, 0x03}, "lock add %eax, (%ebx)"},
		{[]byte{0xf3, 0xa4}, "rep movsb"},
		{[]byte{0x74, 0x05}, "je .+7"},
		{[]byte{0xeb, 0xfe}, "jmp .+0"},
		{[]byte{0xa1, 0x00, 0x10, 0x00, 0x00}, "mov 0x1000, %eax"},
		{[]byte{0x0f, 0xb4, 0x18}, "lfs (%eax), %ebx"},
		{[]byte{0x16}, "push %ss"},
		{[]byte{0x0f, 0x90, 0xc0}, "seto %al"},
	}
	for _, c := range cases {
		full := make([]byte, MaxInstLen)
		copy(full, c.bytes)
		inst, err := Decode(full)
		if err != nil {
			t.Errorf("% x: %v", c.bytes, err)
			continue
		}
		if got := Disasm(inst); got != c.want {
			t.Errorf("% x: %q, want %q", c.bytes, got, c.want)
		}
	}
}

// TestDisasmTotal renders every candidate representative without panicking.
func TestDisasmTotal(t *testing.T) {
	for _, spec := range AllSpecs() {
		_ = spec
	}
	for b0 := 0; b0 < 256; b0++ {
		for _, tail := range [][]byte{{0xc1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
			{0x05, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}} {
			buf := append([]byte{byte(b0)}, tail...)
			inst, err := Decode(buf)
			if err != nil {
				continue
			}
			if s := Disasm(inst); s == "" || s == "(bad)" {
				t.Errorf("% x rendered %q", buf[:inst.Len], s)
			}
		}
	}
}
