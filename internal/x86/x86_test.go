package x86

import (
	"testing"
	"testing/quick"
)

func TestDecodeSimple(t *testing.T) {
	cases := []struct {
		bytes []byte
		name  string
		len   int
	}{
		{[]byte{0x90}, "nop", 1},
		{[]byte{0x50}, "push_r", 1},
		{[]byte{0xf4}, "hlt", 1},
		{[]byte{0xc3}, "ret", 1},
		{[]byte{0xcf}, "iret", 1},
		{[]byte{0xc9}, "leave", 1},
		{[]byte{0x01, 0xd8}, "add_rmv_rv", 2},
		{[]byte{0x66, 0x01, 0xd8}, "add_rmv_rv", 3},
		{[]byte{0x83, 0xc0, 0x05}, "add_rmv_imm8s", 3},
		{[]byte{0xb8, 1, 2, 3, 4}, "mov_r_immv", 5},
		{[]byte{0x66, 0xb8, 1, 2}, "mov_r_immv", 4},
		{[]byte{0x0f, 0xb0, 0xca}, "cmpxchg_rm8_r8", 3},
		{[]byte{0x0f, 0xb4, 0x18}, "lfs", 3},
		{[]byte{0x0f, 0x32}, "rdmsr", 2},
		{[]byte{0x0f, 0x01, 0x15, 0, 0x10, 0, 0}, "lgdt", 7},
		{[]byte{0xff, 0x30}, "push_rmv", 2},
		{[]byte{0xff, 0xf0}, "push_rmv", 2},
		{[]byte{0x8e, 0xd0}, "mov_sreg_rm16", 2},
		{[]byte{0x0f, 0x22, 0xc0}, "mov_cr_r", 3},
		{[]byte{0x74, 0x05}, "je_rel8", 2},
		{[]byte{0x0f, 0x84, 1, 0, 0, 0}, "je_relv", 6},
		{[]byte{0x82, 0xc0, 0x01}, "add_rm8_imm8_alias", 3},
		{[]byte{0xf6, 0xc8, 0x01}, "test_rm8_imm8_alias", 3},
		{[]byte{0xc8, 0x10, 0x00, 0x02}, "enter", 4},
		{[]byte{0xf3, 0xa4}, "movs_b", 2},
		{[]byte{0xf0, 0x01, 0x03}, "add_rmv_rv", 3},
		{[]byte{0x2e, 0x8b, 0x00}, "mov_rv_rmv", 3},
	}
	for _, c := range cases {
		inst, err := Decode(c.bytes)
		if err != nil {
			t.Errorf("% x: decode error %v", c.bytes, err)
			continue
		}
		if inst.Spec.Name != c.name {
			t.Errorf("% x: handler %q, want %q", c.bytes, inst.Spec.Name, c.name)
		}
		if inst.Len != c.len {
			t.Errorf("% x: len %d, want %d", c.bytes, inst.Len, c.len)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	invalid := [][]byte{
		{0x62, 0x00},          // BOUND: outside the subset
		{0xd8, 0x00},          // x87: excluded
		{0x0f, 0x0f},          // undefined two-byte
		{0xff, 0xf8},          // grp5 /7 undefined
		{0xc1, 0xf0, 0x01},    // grp2 /6 undefined
		{0x0f, 0xba, 0xc0, 1}, // grp8 /0 undefined
	}
	for _, b := range invalid {
		if _, err := Decode(b); err == nil {
			t.Errorf("% x: decoded but should be invalid", b)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	truncated := [][]byte{
		{0xb8, 1, 2},       // mov r, imm32 missing bytes
		{0x0f},             // bare escape
		{0x81, 0x05, 1, 2}, // missing disp tail
		{},                 // empty
		{0x66},             // prefix only
	}
	for _, b := range truncated {
		_, err := Decode(b)
		de, ok := err.(*DecodeError)
		if !ok || de.Kind != ErrTruncated {
			t.Errorf("% x: err = %v, want truncated", b, err)
		}
	}
}

func TestDecodeTooLong(t *testing.T) {
	// 15 prefix bytes followed by an opcode exceed the length limit.
	b := make([]byte, 16)
	for i := range b {
		b[i] = 0x66
	}
	b[15] = 0x90
	_, err := Decode(b)
	de, ok := err.(*DecodeError)
	if !ok || de.Kind != ErrTooLong {
		t.Errorf("err = %v, want too-long", err)
	}
}

func TestDecodeModRMForms(t *testing.T) {
	// mod=00 rm=101: disp32
	inst, err := Decode([]byte{0x8b, 0x05, 0x78, 0x56, 0x34, 0x12})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Disp != 0x12345678 || inst.DispSize != 4 {
		t.Errorf("disp32 = %#x size %d", inst.Disp, inst.DispSize)
	}
	// mod=01 with SIB and disp8 (sign-extended)
	inst, err = Decode([]byte{0x8b, 0x44, 0x24, 0xfc})
	if err != nil {
		t.Fatal(err)
	}
	if !inst.HasSIB || inst.Disp != 0xfffffffc {
		t.Errorf("sib/disp8: sib=%v disp=%#x", inst.HasSIB, inst.Disp)
	}
	// mod=00 SIB base=101: disp32 follows SIB
	inst, err = Decode([]byte{0x8b, 0x04, 0x8d, 1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Disp != 1 {
		t.Errorf("sib base=101 disp = %#x, want 1", inst.Disp)
	}
	// Memory-only operand with register mod is #UD.
	if _, err := Decode([]byte{0x8d, 0xc0}); err == nil {
		t.Error("lea with mod=3 should be invalid")
	}
}

func TestDecodeImmediates(t *testing.T) {
	// push imm8 sign-extends to operand size.
	inst, err := Decode([]byte{0x6a, 0xff})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Imm != 0xffffffff {
		t.Errorf("push imm8s = %#x, want sign-extended", inst.Imm)
	}
	// Under the 66 prefix it sign-extends to 16 bits.
	inst, err = Decode([]byte{0x66, 0x6a, 0xff})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Imm != 0xffff {
		t.Errorf("66 push imm8s = %#x, want 0xffff", inst.Imm)
	}
	// enter has two immediates.
	inst, err = Decode([]byte{0xc8, 0x34, 0x12, 0x05})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Imm != 0x1234 || inst.Imm2 != 5 {
		t.Errorf("enter imm = %#x, %#x", inst.Imm, inst.Imm2)
	}
}

func TestDecodePrefixes(t *testing.T) {
	inst, err := Decode([]byte{0x64, 0x66, 0xf0, 0x01, 0x08})
	if err != nil {
		t.Fatal(err)
	}
	if inst.SegOverride != int(FS) || inst.OpSize != 16 || !inst.Lock {
		t.Errorf("prefixes: seg=%d opsize=%d lock=%v", inst.SegOverride, inst.OpSize, inst.Lock)
	}
}

// TestAsmRoundTrip: every assembler helper output must decode back to the
// intended instruction — the assembler↔decoder identity property.
func TestAsmRoundTrip(t *testing.T) {
	cases := []struct {
		bytes []byte
		name  string
	}{
		{AsmMovRegImm32(ESP, 0x2007dc), "mov_r_immv"},
		{AsmMovRegImm16(EAX, 0x50), "mov_r_immv"},
		{AsmMovMemImm8(0x208055, 0x13), "mov_rm8_imm8"},
		{AsmMovMemImm32(0x1000, 0xdeadbeef), "mov_rmv_immv"},
		{AsmMovMemImm16(0x1000, 0xbeef), "mov_rmv_immv"},
		{AsmMovSregReg(SS, EAX), "mov_sreg_rm16"},
		{AsmMovRegSreg(EAX, DS), "mov_rmv_sreg"},
		{AsmMovCRReg(0, EAX), "mov_cr_r"},
		{AsmMovRegCR(EAX, 0), "mov_r_cr"},
		{AsmPushImm32(42), "push_immv"},
		{AsmPushf(), "pushf"},
		{AsmPopf(), "popf"},
		{AsmLGDT(0x1000), "lgdt"},
		{AsmLIDT(0x1000), "lidt"},
		{AsmHlt(), "hlt"},
		{AsmNop(), "nop"},
		{AsmWrmsr(), "wrmsr"},
		{AsmJmpRel32(-5), "jmp_relv"},
		{AsmMovRegMem32(EAX, 0x1234), "mov_rv_rmv"},
		{AsmMovMemReg32(0x1234, EAX), "mov_rmv_rv"},
	}
	for _, c := range cases {
		inst, err := Decode(c.bytes)
		if err != nil {
			t.Errorf("% x: %v", c.bytes, err)
			continue
		}
		if inst.Spec.Name != c.name {
			t.Errorf("% x: handler %q, want %q", c.bytes, inst.Spec.Name, c.name)
		}
		if inst.Len != len(c.bytes) {
			t.Errorf("% x: trailing bytes not consumed (len %d of %d)",
				c.bytes, inst.Len, len(c.bytes))
		}
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	f := func(base uint32, limit20raw uint32, attr uint16) bool {
		limit20 := limit20raw & 0xfffff
		attr &= 0x0fff
		lo, hi := MakeDescriptor(base, limit20, attr)
		b, l, a := DescriptorFields(lo, hi)
		wantLimit := limit20
		if attr&AttrG != 0 {
			wantLimit = limit20<<12 | 0xfff
		}
		return b == base && l == wantLimit && a == attr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDescriptorKnownValues(t *testing.T) {
	// Flat 4-GiB writable data segment: base 0, limit 0xfffff, G=1, D/B=1,
	// P=1, S=1, type=data writable accessed (0x3), DPL 0.
	attr := uint16(AttrP | AttrS | AttrWritable | AttrAccessed | AttrG | AttrDB)
	lo, hi := MakeDescriptor(0, 0xfffff, attr)
	b, l, a := DescriptorFields(lo, hi)
	if b != 0 || l != 0xffffffff || a != attr {
		t.Errorf("flat data: base %#x limit %#x attr %#x", b, l, a)
	}
}

func TestAllSpecsUniqueNames(t *testing.T) {
	specs := AllSpecs()
	if len(specs) < 150 {
		t.Errorf("only %d specs; the subset should define at least 150", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate handler name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestMSRSlots(t *testing.T) {
	if MSRSlot(0x174) < 0 {
		t.Error("SYSENTER_CS should be supported")
	}
	if MSRSlot(0xdead) != -1 {
		t.Error("bogus MSR should be unsupported")
	}
}

func TestLocWidthAndString(t *testing.T) {
	if GPR(EAX).Width() != 32 || Flag(FlagCF).Width() != 1 ||
		SegSel(SS).Width() != 16 || MSR(0).Width() != 64 {
		t.Error("location widths wrong")
	}
	if GPR(ESP).String() != "esp" || Flag(FlagZF).String() != "zf" ||
		SegAttr(SS).String() != "ss.attr" || CR(3).String() != "cr3" {
		t.Error("location names wrong")
	}
}

func TestPackEFLAGS(t *testing.T) {
	bits := map[uint8]uint32{FlagCF: 1, FlagZF: 1, FlagIF: 1}
	v := PackEFLAGS(func(b uint8) uint32 { return bits[b] })
	want := EflagsFixed1 | 1<<FlagCF | 1<<FlagZF | 1<<FlagIF
	if v != want {
		t.Errorf("PackEFLAGS = %#x, want %#x", v, want)
	}
}
