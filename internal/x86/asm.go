package x86

import "encoding/binary"

// Assembler helpers used by the test-program generator (internal/testgen)
// to emit baseline and test-state initializer code. Every encoder here
// round-trips through Decode (verified by tests), so generated programs are
// guaranteed decodable by the table-driven decoder.

func le32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func le16(v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return b[:]
}

// AsmMovRegImm32 encodes mov $imm, %r32 (B8+r id).
func AsmMovRegImm32(r Reg, imm uint32) []byte {
	return append([]byte{0xb8 + byte(r)}, le32(imm)...)
}

// AsmMovRegImm16 encodes mov $imm, %r16 (66 B8+r iw).
func AsmMovRegImm16(r Reg, imm uint16) []byte {
	return append([]byte{0x66, 0xb8 + byte(r)}, le16(imm)...)
}

// AsmMovMemImm8 encodes movb $v, addr (C6 /0 with disp32 addressing).
func AsmMovMemImm8(addr uint32, v byte) []byte {
	out := []byte{0xc6, 0x05}
	out = append(out, le32(addr)...)
	return append(out, v)
}

// AsmMovMemImm32 encodes movl $v, addr (C7 /0 with disp32 addressing).
func AsmMovMemImm32(addr uint32, v uint32) []byte {
	out := []byte{0xc7, 0x05}
	out = append(out, le32(addr)...)
	return append(out, le32(v)...)
}

// AsmMovMemImm16 encodes movw $v, addr (66 C7 /0).
func AsmMovMemImm16(addr uint32, v uint16) []byte {
	out := []byte{0x66, 0xc7, 0x05}
	out = append(out, le32(addr)...)
	return append(out, le16(v)...)
}

// AsmMovSregReg encodes mov %r16, %sreg (8E /r).
func AsmMovSregReg(s SegReg, r Reg) []byte {
	return []byte{0x8e, 0xc0 | byte(s)<<3 | byte(r)}
}

// AsmMovRegSreg encodes mov %sreg, %r/m16 register form (8C /r).
func AsmMovRegSreg(r Reg, s SegReg) []byte {
	return []byte{0x8c, 0xc0 | byte(s)<<3 | byte(r)}
}

// AsmMovCRReg encodes mov %r32, %crN (0F 22 /r).
func AsmMovCRReg(cr uint8, r Reg) []byte {
	return []byte{0x0f, 0x22, 0xc0 | cr<<3 | byte(r)}
}

// AsmMovRegCR encodes mov %crN, %r32 (0F 20 /r).
func AsmMovRegCR(r Reg, cr uint8) []byte {
	return []byte{0x0f, 0x20, 0xc0 | cr<<3 | byte(r)}
}

// AsmPushImm32 encodes push $imm32 (68 id).
func AsmPushImm32(v uint32) []byte {
	return append([]byte{0x68}, le32(v)...)
}

// AsmPushf encodes pushf (9C).
func AsmPushf() []byte { return []byte{0x9c} }

// AsmPopf encodes popf (9D).
func AsmPopf() []byte { return []byte{0x9d} }

// AsmLGDT encodes lgdt addr (0F 01 /2 disp32), where addr names the 6-byte
// pseudo-descriptor in memory.
func AsmLGDT(addr uint32) []byte {
	return append([]byte{0x0f, 0x01, 0x15}, le32(addr)...)
}

// AsmLIDT encodes lidt addr (0F 01 /3 disp32).
func AsmLIDT(addr uint32) []byte {
	return append([]byte{0x0f, 0x01, 0x1d}, le32(addr)...)
}

// AsmHlt encodes hlt (F4).
func AsmHlt() []byte { return []byte{0xf4} }

// AsmNop encodes nop (90).
func AsmNop() []byte { return []byte{0x90} }

// AsmWrmsr encodes wrmsr (0F 30).
func AsmWrmsr() []byte { return []byte{0x0f, 0x30} }

// AsmJmpRel32 encodes jmp rel32 (E9 cd).
func AsmJmpRel32(rel int32) []byte {
	return append([]byte{0xe9}, le32(uint32(rel))...)
}

// AsmMovRegMem32 encodes mov addr, %r32 (8B /r with disp32 addressing).
func AsmMovRegMem32(r Reg, addr uint32) []byte {
	return append([]byte{0x8b, byte(r)<<3 | 5}, le32(addr)...)
}

// AsmMovMemReg32 encodes mov %r32, addr (89 /r with disp32 addressing).
func AsmMovMemReg32(addr uint32, r Reg) []byte {
	return append([]byte{0x89, byte(r)<<3 | 5}, le32(addr)...)
}
