package x86

// Decode tables. These are the single source of truth for which byte
// sequences are instructions; the concrete decoder (decode.go), the
// assembler (asm.go), the semantics compiler (x86/sem), and the symbolic
// instruction-set exploration (internal/core) all consume them.

// tabKind classifies a top-level opcode table entry.
type tabKind uint8

const (
	tabInvalid tabKind = iota
	tabInsn
	tabPrefix
	tabEscape // 0F two-byte escape
	tabGroup
)

// prefixKind identifies a legacy prefix byte.
type prefixKind uint8

const (
	pfxOpSize prefixKind = iota
	pfxLock
	pfxRep
	pfxRepNE
	pfxSegES
	pfxSegCS
	pfxSegSS
	pfxSegDS
	pfxSegFS
	pfxSegGS
)

type tabEntry struct {
	Kind   tabKind
	Spec   *OpSpec
	Group  *[8]*OpSpec
	Prefix prefixKind
}

func ins(name, mn string, ops ...OperandKind) tabEntry {
	return tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: name, Mn: mn, Operands: ops}}
}

func insL(name, mn string, ops ...OperandKind) tabEntry {
	e := ins(name, mn, ops...)
	e.Spec.LockOK = true
	return e
}

func pfx(k prefixKind) tabEntry { return tabEntry{Kind: tabPrefix, Prefix: k} }

func grp(g *[8]*OpSpec) tabEntry { return tabEntry{Kind: tabGroup, Group: g} }

func gi(name, mn string, ops ...OperandKind) *OpSpec {
	return &OpSpec{Name: name, Mn: mn, Operands: ops}
}

func giL(name, mn string, ops ...OperandKind) *OpSpec {
	s := gi(name, mn, ops...)
	s.LockOK = true
	return s
}

// ALU opcode rows 00-3F share a 6-form pattern.
func aluRow(tab *[256]tabEntry, base byte, name, mn string, lock bool) {
	mk := ins
	if lock {
		mk = insL
	}
	tab[base+0] = mk(name+"_rm8_r8", mn, OpdRM8, OpdR8)
	tab[base+1] = mk(name+"_rmv_rv", mn, OpdRMv, OpdRv)
	tab[base+2] = ins(name+"_r8_rm8", mn, OpdR8, OpdRM8)
	tab[base+3] = ins(name+"_rv_rmv", mn, OpdRv, OpdRMv)
	tab[base+4] = ins(name+"_al_imm8", mn, OpdAL, OpdImm8)
	tab[base+5] = ins(name+"_eax_immv", mn, OpdEAXv, OpdImmv)
}

// Group definitions.

var grp1rm8 = [8]*OpSpec{
	giL("add_rm8_imm8", "add", OpdRM8, OpdImm8),
	giL("or_rm8_imm8", "or", OpdRM8, OpdImm8),
	giL("adc_rm8_imm8", "adc", OpdRM8, OpdImm8),
	giL("sbb_rm8_imm8", "sbb", OpdRM8, OpdImm8),
	giL("and_rm8_imm8", "and", OpdRM8, OpdImm8),
	giL("sub_rm8_imm8", "sub", OpdRM8, OpdImm8),
	giL("xor_rm8_imm8", "xor", OpdRM8, OpdImm8),
	gi("cmp_rm8_imm8", "cmp", OpdRM8, OpdImm8),
}

var grp1rmv = [8]*OpSpec{
	giL("add_rmv_immv", "add", OpdRMv, OpdImmv),
	giL("or_rmv_immv", "or", OpdRMv, OpdImmv),
	giL("adc_rmv_immv", "adc", OpdRMv, OpdImmv),
	giL("sbb_rmv_immv", "sbb", OpdRMv, OpdImmv),
	giL("and_rmv_immv", "and", OpdRMv, OpdImmv),
	giL("sub_rmv_immv", "sub", OpdRMv, OpdImmv),
	giL("xor_rmv_immv", "xor", OpdRMv, OpdImmv),
	gi("cmp_rmv_immv", "cmp", OpdRMv, OpdImmv),
}

// grp1alias is the 0x82 row: an undocumented alias of 0x80 on hardware.
var grp1alias [8]*OpSpec

var grp1rmv8s = [8]*OpSpec{
	giL("add_rmv_imm8s", "add", OpdRMv, OpdImm8s),
	giL("or_rmv_imm8s", "or", OpdRMv, OpdImm8s),
	giL("adc_rmv_imm8s", "adc", OpdRMv, OpdImm8s),
	giL("sbb_rmv_imm8s", "sbb", OpdRMv, OpdImm8s),
	giL("and_rmv_imm8s", "and", OpdRMv, OpdImm8s),
	giL("sub_rmv_imm8s", "sub", OpdRMv, OpdImm8s),
	giL("xor_rmv_imm8s", "xor", OpdRMv, OpdImm8s),
	gi("cmp_rmv_imm8s", "cmp", OpdRMv, OpdImm8s),
}

var grp1a = [8]*OpSpec{
	0: gi("pop_rmv", "pop", OpdRMv),
}

func shiftGroup(suffix string, amt OperandKind, width OperandKind) [8]*OpSpec {
	mn := func(m string) string { return m }
	return [8]*OpSpec{
		gi("rol_"+suffix, mn("rol"), width, amt),
		gi("ror_"+suffix, mn("ror"), width, amt),
		gi("rcl_"+suffix, mn("rcl"), width, amt),
		gi("rcr_"+suffix, mn("rcr"), width, amt),
		gi("shl_"+suffix, mn("shl"), width, amt),
		gi("shr_"+suffix, mn("shr"), width, amt),
		nil, // /6: undefined
		gi("sar_"+suffix, mn("sar"), width, amt),
	}
}

var (
	grp2rm8imm = shiftGroup("rm8_imm8", OpdImm8, OpdRM8)
	grp2rmvimm = shiftGroup("rmv_imm8", OpdImm8, OpdRMv)
	grp2rm8one = shiftGroup("rm8_1", OpdOne, OpdRM8)
	grp2rmvone = shiftGroup("rmv_1", OpdOne, OpdRMv)
	grp2rm8cl  = shiftGroup("rm8_cl", OpdCL, OpdRM8)
	grp2rmvcl  = shiftGroup("rmv_cl", OpdCL, OpdRMv)
)

var grp3rm8 = [8]*OpSpec{
	gi("test_rm8_imm8", "test", OpdRM8, OpdImm8),
	nil, // /1 alias of /0, filled in init with AliasEnc
	giL("not_rm8", "not", OpdRM8),
	giL("neg_rm8", "neg", OpdRM8),
	gi("mul_rm8", "mul", OpdRM8),
	gi("imul_rm8", "imul", OpdRM8),
	gi("div_rm8", "div", OpdRM8),
	gi("idiv_rm8", "idiv", OpdRM8),
}

var grp3rmv = [8]*OpSpec{
	gi("test_rmv_immv", "test", OpdRMv, OpdImmv),
	nil, // /1 alias, filled in init
	giL("not_rmv", "not", OpdRMv),
	giL("neg_rmv", "neg", OpdRMv),
	gi("mul_rmv", "mul", OpdRMv),
	gi("imul1_rmv", "imul", OpdRMv),
	gi("div_rmv", "div", OpdRMv),
	gi("idiv_rmv", "idiv", OpdRMv),
}

var grp4 = [8]*OpSpec{
	giL("inc_rm8", "inc", OpdRM8),
	giL("dec_rm8", "dec", OpdRM8),
}

var grp5 = [8]*OpSpec{
	0: giL("inc_rmv", "inc", OpdRMv),
	1: giL("dec_rmv", "dec", OpdRMv),
	2: gi("call_rmv", "call", OpdRMv),
	4: gi("jmp_rmv", "jmp", OpdRMv),
	6: gi("push_rmv", "push", OpdRMv),
}

var grp6 = [8]*OpSpec{
	4: gi("verr", "verr", OpdRM16),
	5: gi("verw", "verw", OpdRM16),
}

var grp7 = [8]*OpSpec{
	0: gi("sgdt", "sgdt", OpdM),
	1: gi("sidt", "sidt", OpdM),
	2: &OpSpec{Name: "lgdt", Mn: "lgdt", Operands: []OperandKind{OpdM}, Priv: true},
	3: &OpSpec{Name: "lidt", Mn: "lidt", Operands: []OperandKind{OpdM}, Priv: true},
	4: gi("smsw", "smsw", OpdRMv),
	6: &OpSpec{Name: "lmsw", Mn: "lmsw", Operands: []OperandKind{OpdRM16}, Priv: true},
	7: &OpSpec{Name: "invlpg", Mn: "invlpg", Operands: []OperandKind{OpdM}, Priv: true},
}

var grp8 = [8]*OpSpec{
	4: gi("bt_rmv_imm8", "bt", OpdRMv, OpdImm8),
	5: giL("bts_rmv_imm8", "bts", OpdRMv, OpdImm8),
	6: giL("btr_rmv_imm8", "btr", OpdRMv, OpdImm8),
	7: giL("btc_rmv_imm8", "btc", OpdRMv, OpdImm8),
}

var grp11rm8 = [8]*OpSpec{
	0: gi("mov_rm8_imm8", "mov", OpdRM8, OpdImm8),
}

var grp11rmv = [8]*OpSpec{
	0: gi("mov_rmv_immv", "mov", OpdRMv, OpdImmv),
}

// ccNames are the 16 x86 condition codes in encoding order.
var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// Tab1 is the one-byte opcode table.
var Tab1 [256]tabEntry

// Tab2 is the two-byte (0F-escape) opcode table.
var Tab2 [256]tabEntry

func init() {
	t := &Tab1
	aluRow(t, 0x00, "add", "add", true)
	t[0x06] = ins("push_es", "push", OpdSegES)
	t[0x07] = ins("pop_es", "pop", OpdSegES)
	aluRow(t, 0x08, "or", "or", true)
	t[0x0e] = ins("push_cs", "push", OpdSegCS)
	t[0x0f] = tabEntry{Kind: tabEscape}
	aluRow(t, 0x10, "adc", "adc", true)
	t[0x16] = ins("push_ss", "push", OpdSegSS)
	t[0x17] = ins("pop_ss", "pop", OpdSegSS)
	aluRow(t, 0x18, "sbb", "sbb", true)
	t[0x1e] = ins("push_ds", "push", OpdSegDS)
	t[0x1f] = ins("pop_ds", "pop", OpdSegDS)
	aluRow(t, 0x20, "and", "and", true)
	t[0x26] = pfx(pfxSegES)
	aluRow(t, 0x28, "sub", "sub", true)
	t[0x2e] = pfx(pfxSegCS)
	aluRow(t, 0x30, "xor", "xor", true)
	t[0x36] = pfx(pfxSegSS)
	aluRow(t, 0x38, "cmp", "cmp", false)
	t[0x3e] = pfx(pfxSegDS)
	// Register-in-opcode rows share a single per-instruction implementation
	// across the 8 encodings, as real emulators do.
	incR := ins("inc_r", "inc", OpdRegOpv)
	decR := ins("dec_r", "dec", OpdRegOpv)
	pushR := ins("push_r", "push", OpdRegOpv)
	popR := ins("pop_r", "pop", OpdRegOpv)
	for r := byte(0); r < 8; r++ {
		t[0x40+r] = incR
		t[0x48+r] = decR
		t[0x50+r] = pushR
		t[0x58+r] = popR
	}
	t[0x60] = ins("pusha", "pusha")
	t[0x61] = ins("popa", "popa")
	t[0x64] = pfx(pfxSegFS)
	t[0x65] = pfx(pfxSegGS)
	t[0x66] = pfx(pfxOpSize)
	t[0x68] = ins("push_immv", "push", OpdImmv)
	t[0x69] = ins("imul3_rv_rmv_immv", "imul", OpdRv, OpdRMv, OpdImmv)
	t[0x6a] = ins("push_imm8s", "push", OpdImm8s)
	t[0x6b] = ins("imul3_rv_rmv_imm8s", "imul", OpdRv, OpdRMv, OpdImm8s)
	for cc := byte(0); cc < 16; cc++ {
		t[0x70+cc] = ins("j"+ccNames[cc]+"_rel8", "j"+ccNames[cc], OpdRel8)
	}
	t[0x80] = grp(&grp1rm8)
	t[0x81] = grp(&grp1rmv)
	t[0x82] = grp(&grp1alias)
	t[0x83] = grp(&grp1rmv8s)
	t[0x84] = ins("test_rm8_r8", "test", OpdRM8, OpdR8)
	t[0x85] = ins("test_rmv_rv", "test", OpdRMv, OpdRv)
	t[0x86] = insL("xchg_rm8_r8", "xchg", OpdRM8, OpdR8)
	t[0x87] = insL("xchg_rmv_rv", "xchg", OpdRMv, OpdRv)
	t[0x88] = ins("mov_rm8_r8", "mov", OpdRM8, OpdR8)
	t[0x89] = ins("mov_rmv_rv", "mov", OpdRMv, OpdRv)
	t[0x8a] = ins("mov_r8_rm8", "mov", OpdR8, OpdRM8)
	t[0x8b] = ins("mov_rv_rmv", "mov", OpdRv, OpdRMv)
	t[0x8c] = ins("mov_rmv_sreg", "mov", OpdRM16, OpdSreg)
	t[0x8d] = ins("lea", "lea", OpdRv, OpdM)
	t[0x8e] = ins("mov_sreg_rm16", "mov", OpdSreg, OpdRM16)
	t[0x8f] = grp(&grp1a)
	t[0x90] = ins("nop", "nop")
	xchgEAX := ins("xchg_eax_r", "xchg", OpdEAXv, OpdRegOpv)
	for r := byte(1); r < 8; r++ {
		t[0x90+r] = xchgEAX
	}
	t[0x98] = ins("cwde", "cwde")
	t[0x99] = ins("cdq", "cdq")
	t[0x9c] = ins("pushf", "pushf")
	t[0x9d] = ins("popf", "popf")
	t[0x9e] = ins("sahf", "sahf")
	t[0x9f] = ins("lahf", "lahf")
	t[0xa0] = ins("mov_al_moffs", "mov", OpdAL, OpdMoffs8)
	t[0xa1] = ins("mov_eax_moffs", "mov", OpdEAXv, OpdMoffsv)
	t[0xa2] = ins("mov_moffs_al", "mov", OpdMoffs8, OpdAL)
	t[0xa3] = ins("mov_moffs_eax", "mov", OpdMoffsv, OpdEAXv)
	t[0xa4] = ins("movs_b", "movsb")
	t[0xa5] = ins("movs_v", "movsd")
	t[0xa6] = ins("cmps_b", "cmpsb")
	t[0xa7] = ins("cmps_v", "cmpsd")
	t[0xa8] = ins("test_al_imm8", "test", OpdAL, OpdImm8)
	t[0xa9] = ins("test_eax_immv", "test", OpdEAXv, OpdImmv)
	t[0xaa] = ins("stos_b", "stosb")
	t[0xab] = ins("stos_v", "stosd")
	t[0xac] = ins("lods_b", "lodsb")
	t[0xad] = ins("lods_v", "lodsd")
	t[0xae] = ins("scas_b", "scasb")
	t[0xaf] = ins("scas_v", "scasd")
	movR8Imm := ins("mov_r8_imm8", "mov", OpdRegOp8, OpdImm8)
	movRImm := ins("mov_r_immv", "mov", OpdRegOpv, OpdImmv)
	for r := byte(0); r < 8; r++ {
		t[0xb0+r] = movR8Imm
		t[0xb8+r] = movRImm
	}
	t[0xc0] = grp(&grp2rm8imm)
	t[0xc1] = grp(&grp2rmvimm)
	t[0xc2] = ins("ret_imm16", "ret", OpdImm16)
	t[0xc3] = ins("ret", "ret")
	t[0xc4] = ins("les", "les", OpdRv, OpdM)
	t[0xc5] = ins("lds", "lds", OpdRv, OpdM)
	t[0xc6] = grp(&grp11rm8)
	t[0xc7] = grp(&grp11rmv)
	t[0xc8] = ins("enter", "enter", OpdImm16, OpdImm8)
	t[0xc9] = ins("leave", "leave")
	t[0xcc] = ins("int3", "int3")
	t[0xcd] = ins("int_imm8", "int", OpdImm8)
	t[0xce] = ins("into", "into")
	t[0xcf] = ins("iret", "iret")
	t[0xd0] = grp(&grp2rm8one)
	t[0xd1] = grp(&grp2rmvone)
	t[0xd2] = grp(&grp2rm8cl)
	t[0xd3] = grp(&grp2rmvcl)
	t[0xd4] = ins("aam", "aam", OpdImm8)
	t[0xd5] = ins("aad", "aad", OpdImm8)
	t[0xd7] = ins("xlat", "xlat")
	t[0xe0] = ins("loopne", "loopne", OpdRel8)
	t[0xe1] = ins("loope", "loope", OpdRel8)
	t[0xe2] = ins("loop", "loop", OpdRel8)
	t[0xe3] = ins("jecxz", "jecxz", OpdRel8)
	t[0xe8] = ins("call_relv", "call", OpdRelv)
	t[0xe9] = ins("jmp_relv", "jmp", OpdRelv)
	t[0xeb] = ins("jmp_rel8", "jmp", OpdRel8)
	t[0xf0] = pfx(pfxLock)
	t[0xf2] = pfx(pfxRepNE)
	t[0xf3] = pfx(pfxRep)
	t[0xf4] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "hlt", Mn: "hlt", Priv: true}}
	t[0xf5] = ins("cmc", "cmc")
	t[0xf6] = grp(&grp3rm8)
	t[0xf7] = grp(&grp3rmv)
	t[0xf8] = ins("clc", "clc")
	t[0xf9] = ins("stc", "stc")
	t[0xfa] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "cli", Mn: "cli", Priv: true}}
	t[0xfb] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "sti", Mn: "sti", Priv: true}}
	t[0xfc] = ins("cld", "cld")
	t[0xfd] = ins("std", "std")
	t[0xfe] = grp(&grp4)
	t[0xff] = grp(&grp5)

	// The 0x82 alias group mirrors 0x80 with AliasEnc handlers.
	for i, s := range grp1rm8 {
		a := *s
		a.Name += "_alias"
		a.AliasEnc = true
		grp1alias[i] = &a
	}
	// grp3 /1 is the undocumented alias of /0.
	a8 := *grp3rm8[0]
	a8.Name += "_alias"
	a8.AliasEnc = true
	grp3rm8[1] = &a8
	av := *grp3rmv[0]
	av.Name += "_alias"
	av.AliasEnc = true
	grp3rmv[1] = &av

	u := &Tab2
	u[0x00] = grp(&grp6)
	u[0x01] = grp(&grp7)
	u[0x06] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "clts", Mn: "clts", Priv: true}}
	u[0x0b] = ins("ud2", "ud2")
	u[0x20] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "mov_r_cr", Mn: "mov",
		Operands: []OperandKind{OpdRMv, OpdCRn}, Priv: true}}
	u[0x22] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "mov_cr_r", Mn: "mov",
		Operands: []OperandKind{OpdCRn, OpdRMv}, Priv: true}}
	u[0x30] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "wrmsr", Mn: "wrmsr", Priv: true}}
	u[0x31] = ins("rdtsc", "rdtsc")
	u[0x32] = tabEntry{Kind: tabInsn, Spec: &OpSpec{Name: "rdmsr", Mn: "rdmsr", Priv: true}}
	for cc := byte(0); cc < 16; cc++ {
		u[0x40+cc] = ins("cmov"+ccNames[cc], "cmov"+ccNames[cc], OpdRv, OpdRMv)
		u[0x80+cc] = ins("j"+ccNames[cc]+"_relv", "j"+ccNames[cc], OpdRelv)
		u[0x90+cc] = ins("set"+ccNames[cc], "set"+ccNames[cc], OpdRM8)
	}
	u[0xa0] = ins("push_fs", "push", OpdSegFS)
	u[0xa1] = ins("pop_fs", "pop", OpdSegFS)
	u[0xa2] = ins("cpuid", "cpuid")
	u[0xa3] = ins("bt_rmv_rv", "bt", OpdRMv, OpdRv)
	u[0xa4] = ins("shld_imm8", "shld", OpdRMv, OpdRv, OpdImm8)
	u[0xa5] = ins("shld_cl", "shld", OpdRMv, OpdRv, OpdCL)
	u[0xa8] = ins("push_gs", "push", OpdSegGS)
	u[0xa9] = ins("pop_gs", "pop", OpdSegGS)
	u[0xab] = insL("bts_rmv_rv", "bts", OpdRMv, OpdRv)
	u[0xac] = ins("shrd_imm8", "shrd", OpdRMv, OpdRv, OpdImm8)
	u[0xad] = ins("shrd_cl", "shrd", OpdRMv, OpdRv, OpdCL)
	u[0xaf] = ins("imul2_rv_rmv", "imul", OpdRv, OpdRMv)
	u[0xb0] = insL("cmpxchg_rm8_r8", "cmpxchg", OpdRM8, OpdR8)
	u[0xb1] = insL("cmpxchg_rmv_rv", "cmpxchg", OpdRMv, OpdRv)
	u[0xb2] = ins("lss", "lss", OpdRv, OpdM)
	u[0xb3] = insL("btr_rmv_rv", "btr", OpdRMv, OpdRv)
	u[0xb4] = ins("lfs", "lfs", OpdRv, OpdM)
	u[0xb5] = ins("lgs", "lgs", OpdRv, OpdM)
	u[0xb6] = ins("movzx_rv_rm8", "movzx", OpdRv, OpdRM8)
	u[0xb7] = ins("movzx_rv_rm16", "movzx", OpdRv, OpdRM16)
	u[0xba] = grp(&grp8)
	u[0xbb] = insL("btc_rmv_rv", "btc", OpdRMv, OpdRv)
	u[0xbc] = ins("bsf", "bsf", OpdRv, OpdRMv)
	u[0xbd] = ins("bsr", "bsr", OpdRv, OpdRMv)
	u[0xbe] = ins("movsx_rv_rm8", "movsx", OpdRv, OpdRM8)
	u[0xbf] = ins("movsx_rv_rm16", "movsx", OpdRv, OpdRM16)
	u[0xc0] = insL("xadd_rm8_r8", "xadd", OpdRM8, OpdR8)
	u[0xc1] = insL("xadd_rmv_rv", "xadd", OpdRMv, OpdRv)
	bswap := ins("bswap", "bswap", OpdRegOpv)
	for r := byte(0); r < 8; r++ {
		u[0xc8+r] = bswap
	}
}

// AllSpecs returns every distinct OpSpec reachable from the decode tables,
// in a deterministic order. This is the ground-truth "per-instruction code"
// inventory against which exploration completeness is measured.
func AllSpecs() []*OpSpec {
	var out []*OpSpec
	seen := make(map[*OpSpec]bool)
	add := func(s *OpSpec) {
		if s != nil && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	walk := func(tab *[256]tabEntry) {
		for i := 0; i < 256; i++ {
			e := tab[i]
			switch e.Kind {
			case tabInsn:
				add(e.Spec)
			case tabGroup:
				for _, s := range e.Group {
					add(s)
				}
			}
		}
	}
	walk(&Tab1)
	walk(&Tab2)
	return out
}
