package x86

// MaxInstLen is the architectural instruction length limit.
const MaxInstLen = 15

// ByteRole classifies how the decoder treats the byte at position
// len(prefix) of an instruction that starts with the given bytes. The
// symbolic instruction-set exploration (internal/core) uses this to branch
// only where the decoder's own control flow branches: table dispatches are
// full 256-way enumerations, the SIB byte contributes a single two-way
// displacement predicate, and immediate/displacement bytes are never
// branched on.
type ByteRole int

// Byte roles.
const (
	RoleDispatch ByteRole = iota // prefix, opcode, second opcode, or ModRM
	RoleSIB                      // SIB byte: one two-way branch
	RoleOther                    // immediate or displacement: no branching
)

// NextByteRole reports the role of the next byte after the given prefix of
// an instruction encoding.
func NextByteRole(prefix []byte) ByteRole {
	i := 0
	// Skip legacy prefixes.
	for i < len(prefix) {
		if Tab1[prefix[i]].Kind != tabPrefix {
			break
		}
		i++
	}
	if i >= len(prefix) {
		return RoleDispatch // next byte is the opcode
	}
	op := prefix[i]
	i++
	entry := Tab1[op]
	if entry.Kind == tabEscape {
		if i >= len(prefix) {
			return RoleDispatch // next byte is the second opcode
		}
		entry = Tab2[prefix[i]]
		i++
	}
	var spec *OpSpec
	var modrm byte
	haveModRM := false
	switch entry.Kind {
	case tabInsn:
		spec = entry.Spec
	case tabGroup:
		if i >= len(prefix) {
			return RoleDispatch // next byte is the ModRM (selects the handler)
		}
		modrm = prefix[i]
		haveModRM = true
		spec = entry.Group[modrm>>3&7]
		i++
	default:
		return RoleOther // invalid opcode: nothing further is inspected
	}
	if spec == nil {
		return RoleOther
	}
	if spec.HasModRM() && !haveModRM {
		if i >= len(prefix) {
			return RoleDispatch // next byte is the ModRM
		}
		modrm = prefix[i]
		haveModRM = true
		i++
	}
	if haveModRM && modrm>>6 != 3 && modrm&7 == 4 && i >= len(prefix) {
		return RoleSIB
	}
	return RoleOther
}

// Decode parses one instruction from code. It implements the decode logic
// whose branch structure the instruction-set exploration walks symbolically:
// prefix loop → opcode (1 or 2 bytes) → group sub-opcode → ModRM/SIB/
// displacement → immediates.
func Decode(code []byte) (*Inst, error) {
	d := decoder{code: code}
	inst, err := d.run()
	if err != nil {
		return nil, err
	}
	inst.Raw = append([]byte(nil), code[:d.pos]...)
	inst.Len = d.pos
	return inst, nil
}

type decoder struct {
	code []byte
	pos  int
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, &DecodeError{Kind: ErrTruncated, Pos: d.pos}
	}
	if d.pos >= MaxInstLen {
		return 0, &DecodeError{Kind: ErrTooLong, Pos: d.pos}
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u16() (uint32, error) {
	lo, err := d.byte()
	if err != nil {
		return 0, err
	}
	hi, err := d.byte()
	if err != nil {
		return 0, err
	}
	return uint32(lo) | uint32(hi)<<8, nil
}

func (d *decoder) u32() (uint32, error) {
	lo, err := d.u16()
	if err != nil {
		return 0, err
	}
	hi, err := d.u16()
	if err != nil {
		return 0, err
	}
	return lo | hi<<16, nil
}

func (d *decoder) run() (*Inst, error) {
	inst := &Inst{OpSize: 32, SegOverride: -1}

	// Prefix loop. Each prefix byte may appear; repeats are tolerated as on
	// hardware (the last segment override wins).
	var entry tabEntry
	var op byte
	for {
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		e := Tab1[b]
		if e.Kind == tabPrefix {
			switch e.Prefix {
			case pfxOpSize:
				inst.OpSize = 16
			case pfxLock:
				inst.Lock = true
			case pfxRep:
				inst.Rep, inst.RepNE = true, false
			case pfxRepNE:
				inst.RepNE, inst.Rep = true, false
			case pfxSegES:
				inst.SegOverride = int(ES)
			case pfxSegCS:
				inst.SegOverride = int(CS)
			case pfxSegSS:
				inst.SegOverride = int(SS)
			case pfxSegDS:
				inst.SegOverride = int(DS)
			case pfxSegFS:
				inst.SegOverride = int(FS)
			case pfxSegGS:
				inst.SegOverride = int(GS)
			}
			continue
		}
		entry, op = e, b
		break
	}

	// Two-byte escape.
	if entry.Kind == tabEscape {
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		entry, op = Tab2[b], b
		inst.TwoByte = true
	}
	inst.Opcode = op

	switch entry.Kind {
	case tabInsn:
		inst.Spec = entry.Spec
	case tabGroup:
		// The group sub-opcode lives in the ModRM reg field; peek it now,
		// the ModRM byte itself is consumed below.
		if d.pos >= len(d.code) {
			return nil, &DecodeError{Kind: ErrTruncated, Pos: d.pos}
		}
		reg := d.code[d.pos] >> 3 & 7
		spec := entry.Group[reg]
		if spec == nil {
			return nil, &DecodeError{Kind: ErrUndefined, Pos: d.pos}
		}
		inst.Spec = spec
	default:
		return nil, &DecodeError{Kind: ErrUndefined, Pos: d.pos - 1}
	}

	if inst.Spec.HasModRM() {
		if err := d.modRM(inst); err != nil {
			return nil, err
		}
		// Memory-only forms (#UD when mod = 11).
		for _, k := range inst.Spec.Operands {
			if k == OpdM && inst.Mod() == 3 {
				return nil, &DecodeError{Kind: ErrUndefined, Pos: d.pos}
			}
		}
	}

	// Immediates and displacement-like trailing fields.
	for _, k := range inst.Spec.Operands {
		switch k {
		case OpdImm8, OpdRel8:
			b, err := d.byte()
			if err != nil {
				return nil, err
			}
			if inst.ImmSize == 0 {
				inst.Imm, inst.ImmSize = uint64(b), 1
			} else {
				inst.Imm2 = uint32(b)
			}
		case OpdImm8s:
			b, err := d.byte()
			if err != nil {
				return nil, err
			}
			v := uint64(int64(int8(b))) & maskFor(inst.OpSize)
			inst.Imm, inst.ImmSize = v, 1
		case OpdImm16:
			v, err := d.u16()
			if err != nil {
				return nil, err
			}
			if inst.ImmSize == 0 {
				inst.Imm, inst.ImmSize = uint64(v), 2
			} else {
				inst.Imm2 = v
			}
		case OpdImmv, OpdRelv:
			var v uint32
			var err error
			if inst.OpSize == 16 {
				v, err = d.u16()
				inst.ImmSize = 2
			} else {
				v, err = d.u32()
				inst.ImmSize = 4
			}
			if err != nil {
				return nil, err
			}
			if k == OpdRelv && inst.OpSize == 16 {
				v = uint32(int32(int16(v))) // rel16 sign-extends
			}
			inst.Imm = uint64(v)
		case OpdMoffs8, OpdMoffsv:
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			inst.Disp, inst.DispSize = v, 4
		}
	}
	return inst, nil
}

func maskFor(opSize int) uint64 {
	if opSize == 16 {
		return 0xffff
	}
	return 0xffffffff
}

func (d *decoder) modRM(inst *Inst) error {
	m, err := d.byte()
	if err != nil {
		return err
	}
	inst.HasModRM = true
	inst.ModRM = m
	mod, rm := m>>6, m&7

	// Control-register moves ignore mod and always use the register form.
	for _, k := range inst.Spec.Operands {
		if k == OpdCRn {
			inst.ModRM |= 0xc0
			return nil
		}
	}

	if mod == 3 {
		return nil
	}
	if rm == 4 { // SIB byte
		sib, err := d.byte()
		if err != nil {
			return err
		}
		inst.HasSIB = true
		inst.SIB = sib
		if mod == 0 && sib&7 == 5 {
			disp, err := d.u32()
			if err != nil {
				return err
			}
			inst.Disp, inst.DispSize = disp, 4
		}
	}
	switch {
	case mod == 0 && rm == 5:
		disp, err := d.u32()
		if err != nil {
			return err
		}
		inst.Disp, inst.DispSize = disp, 4
	case mod == 1:
		b, err := d.byte()
		if err != nil {
			return err
		}
		inst.Disp, inst.DispSize = uint32(int32(int8(b))), 1
	case mod == 2:
		disp, err := d.u32()
		if err != nil {
			return err
		}
		inst.Disp, inst.DispSize = disp, 4
	}
	return nil
}
