// Package x86 defines the guest architecture: an IA-32 protected-mode subset
// with real instruction encodings, segmentation, two-level paging, control
// registers, and exceptions. It provides the decode tables shared by every
// emulator in this repository, a concrete decoder, and an assembler used by
// the test-program generator.
//
// The subset is chosen so that every mechanism involved in the PokeEMU
// paper's findings is present: segment limit/type/privilege checks, page
// table flag checks (P/RW/US/A/D, PSE large pages), descriptor caches, the
// stack-engine instructions (push/pop/enter/leave/iret), far pointer loads,
// read-modify-write instructions (xchg/cmpxchg/xadd), and model-specific
// registers. Excluded (documented in DESIGN.md): x87/MMX/SSE, 16-bit
// addressing (the 67 prefix), far calls/jumps through call gates, and
// hardware task switching.
package x86

// Reg names a 32-bit general purpose register.
type Reg uint8

// General purpose registers in ModRM encoding order.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
)

var regNames = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string { return regNames[r] }

var reg8Names = [...]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}

// Reg8Name returns the 8-bit register name for ModRM index i.
func Reg8Name(i uint8) string { return reg8Names[i&7] }

// SegReg names a segment register.
type SegReg uint8

// Segment registers in ModRM sreg encoding order.
const (
	ES SegReg = iota
	CS
	SS
	DS
	FS
	GS
	NumSegRegs = 6
)

var segNames = [...]string{"es", "cs", "ss", "ds", "fs", "gs"}

func (s SegReg) String() string { return segNames[s] }

// EFLAGS bit positions.
const (
	FlagCF   = 0
	FlagPF   = 2
	FlagAF   = 4
	FlagZF   = 6
	FlagSF   = 7
	FlagTF   = 8
	FlagIF   = 9
	FlagDF   = 10
	FlagOF   = 11
	FlagIOPL = 12 // 2 bits: 12,13
	FlagNT   = 14
	FlagRF   = 16
	FlagVM   = 17
	FlagAC   = 18
	FlagVIF  = 19
	FlagVIP  = 20
	FlagID   = 21
)

// EflagsFixed1 is the mask of EFLAGS bits that always read as 1; reserved
// bits 3, 5, 15 and 22+ always read as 0.
const (
	EflagsFixed1   uint32 = 1 << 1
	EflagsReserved uint32 = 1<<3 | 1<<5 | 1<<15 | 0xffc00000
)

// StatusFlags is the mask of the six arithmetic status flags.
const StatusFlags uint32 = 1<<FlagCF | 1<<FlagPF | 1<<FlagAF | 1<<FlagZF | 1<<FlagSF | 1<<FlagOF

// CR0 bit positions.
const (
	CR0PE = 0
	CR0MP = 1
	CR0EM = 2
	CR0TS = 3
	CR0ET = 4
	CR0NE = 5
	CR0WP = 16
	CR0AM = 18
	CR0NW = 29
	CR0CD = 30
	CR0PG = 31
)

// CR4 bit positions.
const (
	CR4VME = 0
	CR4PVI = 1
	CR4TSD = 2
	CR4DE  = 3
	CR4PSE = 4
	CR4PAE = 5
	CR4MCE = 6
	CR4PGE = 7
	CR4PCE = 8
)

// Exception vectors.
const (
	ExcDE = 0  // divide error
	ExcDB = 1  // debug
	ExcBP = 3  // breakpoint
	ExcOF = 4  // overflow
	ExcBR = 5  // bound range
	ExcUD = 6  // invalid opcode
	ExcNM = 7  // device not available
	ExcDF = 8  // double fault
	ExcTS = 10 // invalid TSS
	ExcNP = 11 // segment not present
	ExcSS = 12 // stack-segment fault
	ExcGP = 13 // general protection
	ExcPF = 14 // page fault
	ExcMF = 16 // x87 FP
	ExcAC = 17 // alignment check
)

// ExcHasErrCode reports whether the CPU pushes an error code for vector v.
func ExcHasErrCode(v uint8) bool {
	switch v {
	case ExcDF, ExcTS, ExcNP, ExcSS, ExcGP, ExcPF, ExcAC:
		return true
	}
	return false
}

// Page-table entry bits (PDE and PTE share the low flag layout).
const (
	PteP   = 1 << 0
	PteRW  = 1 << 1
	PteUS  = 1 << 2
	PtePWT = 1 << 3
	PtePCD = 1 << 4
	PteA   = 1 << 5
	PteD   = 1 << 6
	PdePS  = 1 << 7 // 4-MByte page when CR4.PSE
	PteG   = 1 << 8
)

// Page-fault error code bits.
const (
	PFErrP  = 1 << 0 // fault caused by protection (vs. not-present)
	PFErrWR = 1 << 1 // write access
	PFErrUS = 1 << 2 // user-mode access
)

// Segment descriptor-cache attribute bits, as stored in the Attr field:
// bits 0..7 are the access byte (type[3:0], S, DPL[1:0], P), bits 8..11 are
// the high-nibble flags (AVL, L, D/B, G).
const (
	AttrAccessed = 1 << 0 // data:A / code:A
	AttrWritable = 1 << 1 // data:W; code:readable
	AttrExpand   = 1 << 2 // data:E expand-down; code:C conforming
	AttrCode     = 1 << 3 // type bit 3: 1=code, 0=data
	AttrS        = 1 << 4 // descriptor type: 1=code/data, 0=system
	AttrDPLShift = 5      // 2 bits
	AttrP        = 1 << 7
	AttrAVL      = 1 << 8
	AttrL        = 1 << 9
	AttrDB       = 1 << 10
	AttrG        = 1 << 11
)

// DPL extracts the descriptor privilege level from an Attr value.
func DPL(attr uint16) uint8 { return uint8(attr>>AttrDPLShift) & 3 }

// Model-specific registers supported by the subset. RDMSR/WRMSR of any other
// index raises #GP(0) — the check QEMU was found to skip.
var MSRs = []uint32{
	0x010,      // IA32_TIME_STAMP_COUNTER
	0x01b,      // IA32_APIC_BASE
	0x174,      // IA32_SYSENTER_CS
	0x175,      // IA32_SYSENTER_ESP
	0x176,      // IA32_SYSENTER_EIP
	0xc0000080, // IA32_EFER
}

// MSRSlot maps an MSR index to its storage slot, or -1 if unsupported.
func MSRSlot(index uint32) int {
	for i, m := range MSRs {
		if m == index {
			return i
		}
	}
	return -1
}

// NumMSRSlots is the number of architected MSR storage slots.
var NumMSRSlots = len(MSRs)

// LocKind classifies a machine-state location.
type LocKind uint8

// Machine-state location kinds. Together these cover everything Figure 3 of
// the paper marks as (potentially) symbolic, plus the concrete plumbing.
const (
	LocGPR       LocKind = iota // Index: Reg; 32 bits
	LocEIP                      // 32 bits
	LocFlag                     // Index: EFLAGS bit position; 1 bit
	LocSegSel                   // Index: SegReg; 16 bits
	LocSegBase                  // Index: SegReg; 32 bits
	LocSegLimit                 // Index: SegReg; 32 bits (byte-granular, post-G)
	LocSegAttr                  // Index: SegReg; 16 bits
	LocCR                       // Index: 0,2,3,4; 32 bits
	LocGDTRBase                 // 32 bits
	LocGDTRLimit                // 32 bits (16 architectural, held in 32)
	LocIDTRBase                 // 32 bits
	LocIDTRLimit                // 32 bits
	LocMSR                      // Index: MSR slot; 64 bits
)

// Loc addresses one piece of machine state for the IR's get/set operations.
type Loc struct {
	Kind  LocKind
	Index uint8
}

// Width returns the location's width in bits.
func (l Loc) Width() uint8 {
	switch l.Kind {
	case LocFlag:
		return 1
	case LocSegSel, LocSegAttr:
		return 16
	case LocMSR:
		return 64
	default:
		return 32
	}
}

func (l Loc) String() string {
	switch l.Kind {
	case LocGPR:
		return regNames[l.Index]
	case LocEIP:
		return "eip"
	case LocFlag:
		return flagName(l.Index)
	case LocSegSel:
		return segNames[l.Index] + ".sel"
	case LocSegBase:
		return segNames[l.Index] + ".base"
	case LocSegLimit:
		return segNames[l.Index] + ".limit"
	case LocSegAttr:
		return segNames[l.Index] + ".attr"
	case LocCR:
		return "cr" + string('0'+rune(l.Index))
	case LocGDTRBase:
		return "gdtr.base"
	case LocGDTRLimit:
		return "gdtr.limit"
	case LocIDTRBase:
		return "idtr.base"
	case LocIDTRLimit:
		return "idtr.limit"
	case LocMSR:
		return "msr" + string('0'+rune(l.Index))
	default:
		return "loc?"
	}
}

func flagName(bit uint8) string {
	switch bit {
	case FlagCF:
		return "cf"
	case FlagPF:
		return "pf"
	case FlagAF:
		return "af"
	case FlagZF:
		return "zf"
	case FlagSF:
		return "sf"
	case FlagTF:
		return "tf"
	case FlagIF:
		return "if"
	case FlagDF:
		return "df"
	case FlagOF:
		return "of"
	case 12, 13:
		return "iopl" + string('0'+rune(bit-12))
	case FlagNT:
		return "nt"
	case FlagRF:
		return "rf"
	case FlagVM:
		return "vm"
	case FlagAC:
		return "ac"
	case FlagVIF:
		return "vif"
	case FlagVIP:
		return "vip"
	case FlagID:
		return "id"
	default:
		return "flag?"
	}
}

// Convenience constructors for common locations.

// GPR returns the location of a general purpose register.
func GPR(r Reg) Loc { return Loc{Kind: LocGPR, Index: uint8(r)} }

// EIPLoc is the instruction pointer location.
var EIPLoc = Loc{Kind: LocEIP}

// Flag returns the location of one EFLAGS bit.
func Flag(bit uint8) Loc { return Loc{Kind: LocFlag, Index: bit} }

// SegSel returns the visible selector location of a segment register.
func SegSel(s SegReg) Loc { return Loc{Kind: LocSegSel, Index: uint8(s)} }

// SegBase returns the descriptor-cache base location of a segment register.
func SegBase(s SegReg) Loc { return Loc{Kind: LocSegBase, Index: uint8(s)} }

// SegLimit returns the descriptor-cache limit location of a segment register.
func SegLimit(s SegReg) Loc { return Loc{Kind: LocSegLimit, Index: uint8(s)} }

// SegAttr returns the descriptor-cache attribute location of a segment register.
func SegAttr(s SegReg) Loc { return Loc{Kind: LocSegAttr, Index: uint8(s)} }

// CR returns the location of a control register (0, 2, 3 or 4).
func CR(n uint8) Loc { return Loc{Kind: LocCR, Index: n} }

// MSR returns the location of an MSR storage slot.
func MSR(slot int) Loc { return Loc{Kind: LocMSR, Index: uint8(slot)} }

// AllFlagBits lists the EFLAGS bit positions that physically exist.
var AllFlagBits = []uint8{
	FlagCF, FlagPF, FlagAF, FlagZF, FlagSF, FlagTF, FlagIF, FlagDF, FlagOF,
	12, 13, FlagNT, FlagRF, FlagVM, FlagAC, FlagVIF, FlagVIP, FlagID,
}

// EflagsValidMask covers every physically-present EFLAGS bit plus the
// fixed-one bit.
var EflagsValidMask = func() uint32 {
	m := EflagsFixed1
	for _, b := range AllFlagBits {
		m |= 1 << b
	}
	return m
}()

// PackEFLAGS assembles an EFLAGS image from a bit-reader function.
func PackEFLAGS(get func(bit uint8) uint32) uint32 {
	v := EflagsFixed1
	for _, b := range AllFlagBits {
		v |= (get(b) & 1) << b
	}
	return v
}

// DescriptorFields unpacks a raw 8-byte GDT descriptor into the cache
// representation used by the emulators: base, byte-granular limit, and the
// packed attribute word. This mirrors the descriptor-parse computation that
// the paper summarizes during symbolic execution (Section 3.3.2); the IR
// version lives in x86/sem, and both are cross-checked by tests.
func DescriptorFields(lo, hi uint32) (base, limit uint32, attr uint16) {
	base = lo>>16 | (hi&0xff)<<16 | hi&0xff000000
	limit = lo&0xffff | hi&0x000f0000
	attr = uint16(hi>>8&0xff) | uint16(hi>>20&0xf)<<8
	if attr&AttrG != 0 {
		limit = limit<<12 | 0xfff
	}
	return base, limit, attr
}

// MakeDescriptor packs base/limit/attr into the raw 8-byte descriptor words.
// limit is the architectural 20-bit limit field (pre-G scaling).
func MakeDescriptor(base, limit20 uint32, attr uint16) (lo, hi uint32) {
	lo = limit20&0xffff | base<<16
	hi = base>>16&0xff | uint32(attr&0xff)<<8 | limit20&0xf0000 |
		uint32(attr>>8&0xf)<<20 | base&0xff000000
	return lo, hi
}
