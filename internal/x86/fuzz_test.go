package x86

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary byte strings at the instruction decoder and
// checks its structural invariants: it never panics, a successful decode
// consumes between 1 and MaxInstLen bytes (never more than it was given),
// Raw mirrors exactly the consumed bytes, the disassembler renders every
// accepted instruction, and decoding is prefix-stable (re-decoding just the
// consumed bytes yields the same instruction).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x90})                                                 // nop
	f.Add([]byte{0xb8, 0x2a, 0x00, 0x00, 0x00})                         // mov eax, imm32
	f.Add([]byte{0x66, 0xb8, 0x2a, 0x00})                               // opsize prefix
	f.Add([]byte{0x0f, 0xb2, 0x04, 0x8d, 1, 2, 3, 4})                   // lss with SIB+disp
	f.Add([]byte{0xf0, 0x0f, 0xb1, 0x08})                               // lock cmpxchg
	f.Add([]byte{0x2e, 0x3e, 0x26, 0x64, 0x65, 0x36, 0x66, 0x67, 0x40}) // prefix soup
	f.Add([]byte{0xc1, 0xe0, 0x1f})                                     // shl eax, 31
	f.Add([]byte{0xcf})                                                 // iret
	f.Add(bytes.Repeat([]byte{0x66}, 20))                               // over-long prefix run
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, code []byte) {
		inst, err := Decode(code)
		if err != nil {
			if inst != nil {
				t.Fatalf("Decode(% x) returned both an instruction and %v", code, err)
			}
			return
		}
		if inst.Len < 1 || inst.Len > len(code) || inst.Len > MaxInstLen {
			t.Fatalf("Decode(% x): Len %d out of range (input %d bytes)", code, inst.Len, len(code))
		}
		if !bytes.Equal(inst.Raw, code[:inst.Len]) {
			t.Fatalf("Decode(% x): Raw % x does not mirror consumed bytes", code, inst.Raw)
		}
		if s := Disasm(inst); s == "" {
			t.Fatalf("Decode(% x): empty disassembly", code)
		}
		again, err := Decode(code[:inst.Len])
		if err != nil {
			t.Fatalf("re-decode of consumed bytes % x failed: %v", inst.Raw, err)
		}
		if again.Len != inst.Len || again.Spec != inst.Spec {
			t.Fatalf("re-decode of % x: Len %d→%d, spec %v→%v",
				inst.Raw, inst.Len, again.Len, inst.Spec, again.Spec)
		}
	})
}
