package sem

import (
	"strings"
	"testing"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// encodingFor builds a decodable byte sequence for a spec: opcode search
// over the tables plus a plausible ModRM/immediate tail.
func encodingsFor(t *testing.T, spec *x86.OpSpec) [][]byte {
	t.Helper()
	var out [][]byte
	try := func(b []byte) {
		full := make([]byte, x86.MaxInstLen)
		copy(full, b)
		inst, err := x86.Decode(full)
		if err == nil && inst.Spec == spec {
			out = append(out, full)
		}
	}
	for b0 := 0; b0 < 256; b0++ {
		for b1 := 0; b1 < 256; b1 += 7 { // stride keeps this fast
			try([]byte{byte(b0), byte(b1)})
			try([]byte{0x0f, byte(b0), byte(b1)})
		}
		try([]byte{byte(b0), 0xc1}) // a register ModRM form
		try([]byte{0x0f, byte(b0), 0xc1})
	}
	return out
}

// TestCompileTotality compiles every reachable per-instruction
// implementation, in both operand sizes and both configurations, and runs
// each program concretely on a baseline-like state. No panics, no
// malformed programs.
func TestCompileTotality(t *testing.T) {
	specs := x86.AllSpecs()
	compiled := 0
	for _, spec := range specs {
		encs := encodingsFor(t, spec)
		if len(encs) == 0 {
			t.Errorf("no encoding found for %s", spec.Name)
			continue
		}
		for _, withPrefix := range []bool{false, true} {
			enc := encs[0]
			if withPrefix {
				enc = append([]byte{0x66}, enc...)
			}
			inst, err := x86.Decode(enc)
			if err != nil {
				continue // e.g. 15-byte limit after prefixing
			}
			for _, cfg := range []Config{BochsConfig, HardwareConfig} {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("compile %s (opsize %d, cfg %v) panicked: %v",
								spec.Name, inst.OpSize, cfg.FarLoadSelectorFirst, r)
						}
					}()
					p := Compile(inst, cfg)
					if len(p.Stmts) == 0 {
						t.Errorf("%s compiled to an empty program", spec.Name)
					}
					compiled++
				}()
			}
		}
	}
	if compiled < 300 {
		t.Errorf("only %d compilations; expected full coverage", compiled)
	}
}

// TestCompileLockForms verifies the LOCK legality rules: memory RMW forms
// accept the prefix, register forms and non-RMW instructions reject it.
func TestCompileLockForms(t *testing.T) {
	cases := []struct {
		bytes []byte
		ud    bool
	}{
		{[]byte{0xf0, 0x01, 0x03}, false}, // lock add (%ebx), %eax
		{[]byte{0xf0, 0x01, 0xd8}, true},  // lock add %ebx, %eax (reg form)
		{[]byte{0xf0, 0x8b, 0x03}, true},  // lock mov: not lockable
		{[]byte{0xf0, 0x90}, true},        // lock nop: no modrm
	}
	for _, c := range cases {
		full := make([]byte, x86.MaxInstLen)
		copy(full, c.bytes)
		inst, err := x86.Decode(full)
		if err != nil {
			t.Fatalf("% x: %v", c.bytes, err)
		}
		p := Compile(inst, BochsConfig)
		isUD := len(p.Stmts) == 1 && p.Stmts[0].Kind == ir.KRaise &&
			p.Stmts[0].Vector == x86.ExcUD
		if isUD != c.ud {
			t.Errorf("% x: ud=%v, want %v", c.bytes, isUD, c.ud)
		}
	}
}

// TestDescriptorParseProgramStructure: the standalone parse used for
// summarization must reference only its port locations.
func TestDescriptorParseProgramStructure(t *testing.T) {
	for _, forSS := range []bool{false, true} {
		p := DescriptorParseProgram(forSS)
		ports := DescriptorParsePorts
		allowed := map[x86.Loc]bool{
			ports.Lo: true, ports.Hi: true, ports.Sel: true,
			ports.Base: true, ports.Limit: true, ports.Attr: true,
		}
		for _, s := range p.Stmts {
			switch s.Kind {
			case ir.KGet, ir.KSet:
				if !allowed[s.Loc] {
					t.Errorf("parse(forSS=%v) touches %v outside its ports", forSS, s.Loc)
				}
			case ir.KLoad, ir.KStore:
				t.Errorf("parse(forSS=%v) must be memory-free", forSS)
			}
		}
	}
}

// TestDeliveryProgramCompiles covers every error-code shape.
func TestDeliveryProgramCompiles(t *testing.T) {
	for _, c := range []struct {
		vec    uint8
		hasErr bool
	}{{x86.ExcDE, false}, {x86.ExcGP, true}, {x86.ExcPF, true}, {0x80, false}} {
		p := CompileDelivery(c.vec, 0x1234, c.hasErr, BochsConfig)
		if len(p.Stmts) < 10 {
			t.Errorf("delivery for #%d suspiciously small", c.vec)
		}
	}
}

// TestUndefPolicyDiffersWhereDocumented: the Bochs and hardware configs
// must produce different programs exactly for the instruction classes
// DESIGN.md lists (mul low flags, multi-bit shift OF) and identical
// programs for fully-defined instructions.
func TestUndefPolicyDiffersWhereDocumented(t *testing.T) {
	progFor := func(bytes []byte, cfg Config) string {
		full := make([]byte, x86.MaxInstLen)
		copy(full, bytes)
		inst, err := x86.Decode(full)
		if err != nil {
			t.Fatal(err)
		}
		return Compile(inst, cfg).String()
	}
	// mul: policies differ.
	if progFor([]byte{0xf7, 0xe1}, BochsConfig) == progFor([]byte{0xf7, 0xe1}, HardwareConfig) {
		t.Error("mul should compile differently under the two policies")
	}
	// add: fully defined, must be identical.
	if progFor([]byte{0x01, 0xd8}, BochsConfig) != progFor([]byte{0x01, 0xd8}, HardwareConfig) {
		t.Error("add must be identical under both policies")
	}
	// lfs: fetch order differs.
	if progFor([]byte{0x0f, 0xb4, 0x18}, BochsConfig) == progFor([]byte{0x0f, 0xb4, 0x18}, HardwareConfig) {
		t.Error("lfs should compile differently (fetch order)")
	}
}

// TestAliasCompilesLikeCanonical: the 0x82 alias and the canonical 0x80
// form must produce the same semantics in the references.
func TestAliasCompilesLikeCanonical(t *testing.T) {
	canon := make([]byte, 15)
	copy(canon, []byte{0x80, 0xc0, 0x05})
	alias := make([]byte, 15)
	copy(alias, []byte{0x82, 0xc0, 0x05})
	ci, _ := x86.Decode(canon)
	ai, _ := x86.Decode(alias)
	cp := Compile(ci, BochsConfig).String()
	ap := Compile(ai, BochsConfig).String()
	// Program names differ (the handler is the _alias clone); bodies match.
	cb := cp[strings.IndexByte(cp, '\n'):]
	ab := ap[strings.IndexByte(ap, '\n'):]
	if cb != ab {
		t.Error("alias encoding must have identical semantics to the canonical form")
	}
}
