package sem

import (
	"strings"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// emitMovLea handles plain data movement: mov forms, lea, movzx/movsx,
// cmovcc, setcc, xlat, and the moffs forms.
func (c *ctx) emitMovLea(name string) bool {
	b := c.b
	switch name {
	case "mov_rm8_r8", "mov_rmv_rv", "mov_r8_rm8", "mov_rv_rmv",
		"mov_rm8_imm8", "mov_rmv_immv":
		form := strings.TrimPrefix(name, "mov_")
		dstTok, srcTok := splitForm(form)
		dst := c.resolveForm(dstTok, true)
		src := c.resolveForm(srcTok, false)
		c.refWrite(dst, c.refRead(src))
		c.done()
		return true
	case "mov_r8_imm8":
		c.gprWrite(c.inst.Opcode&7, 8, c.immOperand(8))
		c.done()
		return true
	case "mov_r_immv":
		c.gprWrite(c.inst.Opcode&7, c.osz, c.immOperand(c.osz))
		c.done()
		return true
	case "mov_al_moffs", "mov_eax_moffs":
		w := uint8(8)
		if name == "mov_eax_moffs" {
			w = c.osz
		}
		seg := x86.DS
		if c.inst.SegOverride >= 0 {
			seg = x86.SegReg(c.inst.SegOverride)
		}
		v := c.readMem(seg, c.konst(32, uint64(c.inst.Disp)), w/8, false)
		c.gprWrite(0, w, v)
		c.done()
		return true
	case "mov_moffs_al", "mov_moffs_eax":
		w := uint8(8)
		if name == "mov_moffs_eax" {
			w = c.osz
		}
		seg := x86.DS
		if c.inst.SegOverride >= 0 {
			seg = x86.SegReg(c.inst.SegOverride)
		}
		c.writeMem(seg, c.konst(32, uint64(c.inst.Disp)), w/8, false, c.gprRead(0, w))
		c.done()
		return true
	case "lea":
		_, off := c.effAddr() // no memory access, no checks
		if c.osz == 16 {
			c.gprWrite(c.inst.RegField(), 16, b.Extract(off, 0, 16))
		} else {
			c.gprWrite(c.inst.RegField(), 32, off)
		}
		c.done()
		return true
	case "movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16":
		srcW := uint8(8)
		if strings.HasSuffix(name, "16") {
			srcW = 16
		}
		src := c.resolveRM(srcW, false)
		v := c.rmRead(src)
		if strings.HasPrefix(name, "movzx") {
			c.gprWrite(c.inst.RegField(), c.osz, b.ZExt(v, c.osz))
		} else {
			c.gprWrite(c.inst.RegField(), c.osz, b.SExt(v, c.osz))
		}
		c.done()
		return true
	case "xlat":
		al := c.gprRead(0, 8)
		ebx := b.Get(x86.GPR(x86.EBX))
		seg := x86.DS
		if c.inst.SegOverride >= 0 {
			seg = x86.SegReg(c.inst.SegOverride)
		}
		v := c.readMem(seg, b.Add(ebx, b.ZExt(al, 32)), 1, false)
		c.gprWrite(0, 8, v)
		c.done()
		return true
	}
	if strings.HasPrefix(name, "cmov") {
		cc := ccIndex(strings.TrimPrefix(name, "cmov"))
		src := c.resolveRM(c.osz, false)
		v := c.rmRead(src)
		old := c.gprRead(c.inst.RegField(), c.osz)
		c.gprWrite(c.inst.RegField(), c.osz, b.Ite(c.condValue(cc), v, old))
		c.done()
		return true
	}
	if strings.HasPrefix(name, "set") && len(name) <= 5 {
		cc := ccIndex(strings.TrimPrefix(name, "set"))
		dst := c.resolveRM(8, true)
		c.rmWrite(dst, b.ZExt(c.condValue(cc), 8))
		c.done()
		return true
	}
	return false
}

// ccIndex maps a condition suffix to its encoding value.
func ccIndex(suffix string) uint8 {
	for i, n := range ccNamesSem {
		if n == suffix {
			return uint8(i)
		}
	}
	panic("sem: unknown condition " + suffix)
}

var ccNamesSem = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// emitStack handles push/pop and frame instructions.
func (c *ctx) emitStack(name string) bool {
	b := c.b
	switch name {
	case "push_r":
		c.push(c.gprRead(c.inst.Opcode&7, c.osz))
		c.done()
		return true
	case "pop_r":
		v := c.pop()
		c.gprWrite(c.inst.Opcode&7, c.osz, v)
		c.done()
		return true
	case "push_immv", "push_imm8s":
		c.push(c.immOperand(c.osz))
		c.done()
		return true
	case "push_rmv":
		src := c.resolveRM(c.osz, false)
		c.push(c.rmRead(src))
		c.done()
		return true
	case "pop_rmv":
		// The popped value lands in an r/m destination; the read and the
		// destination write are both checked before ESP moves.
		v := c.stackRead(0, c.osz/8)
		dst := c.resolveRM(c.osz, true)
		esp := b.Get(x86.GPR(x86.ESP))
		b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, uint64(c.osz/8))))
		c.rmWrite(dst, v)
		c.done()
		return true
	case "pusha":
		// The whole 8-register frame is checked as one range before any
		// write, so a fault leaves the state untouched (hardware behavior).
		size := uint64(c.osz / 8)
		esp := b.Get(x86.GPR(x86.ESP))
		bottom := b.Sub(esp, c.konst(32, 8*size))
		c.translate(x86.SS, bottom, uint8(8*size), true, true)
		for i := 0; i < 8; i++ {
			var v ir.Operand
			if i == int(x86.ESP) {
				v = frameVal(c, esp)
			} else {
				v = c.gprRead(uint8(i), c.osz)
			}
			// eax lands at the highest address (it is pushed first).
			addr := b.Add(bottom, c.konst(32, uint64(7-i)*size))
			c.writeMem(x86.SS, addr, uint8(size), true, v)
		}
		b.Set(x86.GPR(x86.ESP), bottom)
		c.done()
		return true
	case "popa":
		size := uint64(c.osz / 8)
		esp := b.Get(x86.GPR(x86.ESP))
		c.translate(x86.SS, esp, uint8(8*size), false, true)
		for i := 0; i < 8; i++ {
			v := c.readMem(x86.SS, b.Add(esp, c.konst(32, uint64(7-i)*size)),
				uint8(size), true)
			if i == int(x86.ESP) {
				continue // the popped ESP value is discarded
			}
			c.gprWrite(uint8(i), c.osz, v)
		}
		b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, 8*size)))
		c.done()
		return true
	case "pushf":
		v := c.packEFLAGS()
		v = b.And(v, c.konst(32, 0x00fcffff)) // VM and RF read as 0
		if c.osz == 16 {
			c.push(b.Extract(v, 0, 16))
		} else {
			c.push(v)
		}
		c.done()
		return true
	case "popf":
		v := c.pop()
		c.unpackEFLAGS(b.ZExt(v, 32), true)
		c.done()
		return true
	case "enter":
		c.enter()
		return true
	case "leave":
		// Hi-Fi ordering: the load is checked before ESP or EBP change.
		ebp := b.Get(x86.GPR(x86.EBP))
		v := c.readMem(x86.SS, ebp, c.osz/8, true)
		b.Set(x86.GPR(x86.ESP), b.Add(ebp, c.konst(32, uint64(c.osz/8))))
		if c.osz == 16 {
			c.gprWrite(uint8(x86.EBP), 16, v)
		} else {
			b.Set(x86.GPR(x86.EBP), v)
		}
		c.done()
		return true
	}
	return false
}

func (c *ctx) enter() {
	b := c.b
	allocSize := uint64(c.inst.Imm) & 0xffff
	level := uint8(c.inst.Imm2) & 0x1f
	size := uint64(c.osz / 8)

	ebp := b.Get(x86.GPR(x86.EBP))
	c.push(frameVal(c, ebp))
	frameTemp := b.Get(x86.GPR(x86.ESP))
	for l := uint8(1); l < level; l++ {
		// Copy the enclosing frame pointers.
		src := b.Sub(ebp, c.konst(32, uint64(l)*size))
		v := c.readMem(x86.SS, src, uint8(size), true)
		c.push(v)
	}
	if level > 0 {
		c.push(frameVal(c, frameTemp))
	}
	if c.osz == 16 {
		c.gprWrite(uint8(x86.EBP), 16, b.Extract(frameTemp, 0, 16))
	} else {
		b.Set(x86.GPR(x86.EBP), frameTemp)
	}
	esp := b.Get(x86.GPR(x86.ESP))
	b.Set(x86.GPR(x86.ESP), b.Sub(esp, c.konst(32, allocSize)))
	c.done()
}

func frameVal(c *ctx, v ir.Operand) ir.Operand {
	if c.osz == 16 {
		return c.b.Extract(v, 0, 16)
	}
	return v
}

// emitBitOps handles bt/bts/btr/btc, bsf/bsr, and shld/shrd.
func (c *ctx) emitBitOps(name string) bool {
	switch {
	case strings.HasPrefix(name, "bt_") || strings.HasPrefix(name, "bts_") ||
		strings.HasPrefix(name, "btr_") || strings.HasPrefix(name, "btc_"):
		op := name[:strings.IndexByte(name, '_')]
		immForm := strings.HasSuffix(name, "imm8")
		c.bitTest(op, immForm)
		return true
	case name == "bsf" || name == "bsr":
		c.bitScan(name == "bsr")
		return true
	case strings.HasPrefix(name, "shld") || strings.HasPrefix(name, "shrd"):
		c.doubleShift(strings.HasPrefix(name, "shld"), strings.HasSuffix(name, "cl"))
		return true
	}
	return false
}

// bitTest implements the bt family. For register destinations the bit index
// wraps within the operand; for memory destinations the bit index addresses
// memory beyond the operand (bitIdx>>5 dwords away, signed), one of the
// addressing subtleties high-coverage exploration exercises.
func (c *ctx) bitTest(op string, immForm bool) {
	b := c.b
	w := c.osz
	write := op != "bt"
	var bitIdx ir.Operand
	if immForm {
		bitIdx = c.konst(32, c.inst.Imm&uint64(w-1))
	} else {
		bitIdx = b.ZExt(c.gprRead(c.inst.RegField(), w), 32)
	}

	var cur, newv ir.Operand
	var commit func(v ir.Operand)
	if c.inst.IsRegForm() {
		idx := b.And(bitIdx, c.konst(32, uint64(w-1)))
		a := c.gprRead(c.inst.RM(), w)
		cur = b.Extract(b.Shr(a, idx), 0, 1)
		mask := b.Shl(c.konst(w, 1), b.Extract(idx, 0, 8))
		switch op {
		case "bts":
			newv = b.Or(a, mask)
		case "btr":
			newv = b.And(a, b.Not(mask))
		case "btc":
			newv = b.Xor(a, mask)
		}
		commit = func(v ir.Operand) { c.gprWrite(c.inst.RM(), w, v) }
	} else {
		seg, off := c.effAddr()
		var unit uint64 = uint64(w / 8)
		// Signed dword (or word) displacement derived from the bit index.
		shift := uint8(5)
		if w == 16 {
			shift = 4
		}
		dwordOff := b.Sar(bitIdx, c.konst(8, uint64(shift)))
		byteOff := b.Mul(dwordOff, c.konst(32, unit))
		addr := b.Add(off, byteOff)
		m := c.translate(seg, addr, uint8(unit), write, false)
		a := c.memLoad(m)
		idx := b.And(bitIdx, c.konst(32, uint64(w-1)))
		cur = b.Extract(b.Shr(a, idx), 0, 1)
		mask := b.Shl(c.konst(w, 1), b.Extract(idx, 0, 8))
		switch op {
		case "bts":
			newv = b.Or(a, mask)
		case "btr":
			newv = b.And(a, b.Not(mask))
		case "btc":
			newv = b.Xor(a, mask)
		}
		commit = func(v ir.Operand) { c.memStore(m, v) }
	}
	c.setFlag(x86.FlagCF, cur)
	if write {
		commit(newv)
	}
	c.done()
}

// bitScan implements bsf/bsr with an unrolled scan.
func (c *ctx) bitScan(reverse bool) {
	b := c.b
	w := c.osz
	src := c.resolveRM(w, false)
	v := c.rmRead(src)
	zero := b.Eq(v, c.konst(w, 0))
	c.setFlag(x86.FlagZF, zero)

	// Unrolled priority scan via an ite chain from the far end toward the
	// near end: res = position of the first set bit in scan order.
	res := c.konst(w, 0)
	if reverse {
		for i := 0; i < int(w); i++ {
			hit := b.Extract(v, uint8(i), 1)
			res = b.Ite(hit, c.konst(w, uint64(i)), res)
		}
	} else {
		for i := int(w) - 1; i >= 0; i-- {
			hit := b.Extract(v, uint8(i), 1)
			res = b.Ite(hit, c.konst(w, uint64(i)), res)
		}
	}
	old := c.gprRead(c.inst.RegField(), w)
	var out ir.Operand
	switch c.cfg.Undef.BsfZeroDest {
	case UndefUnchanged:
		out = b.Ite(zero, old, res)
	case UndefZero:
		out = b.Ite(zero, c.konst(w, 0), res)
	default:
		out = res
	}
	c.gprWrite(c.inst.RegField(), w, out)
	c.done()
}

// doubleShift implements shld/shrd.
func (c *ctx) doubleShift(left bool, clForm bool) {
	b := c.b
	w := c.osz
	dst := c.resolveRM(w, true)
	a := c.rmRead(dst)
	fill := c.gprRead(c.inst.RegField(), w)
	var count ir.Operand
	if clForm {
		count = b.And(c.gprRead(1, 8), c.konst(8, 0x1f))
	} else {
		count = c.konst(8, c.inst.Imm&0x1f)
	}
	skip := b.NewLabel()
	b.CJump(b.Eq(count, c.konst(8, 0)), skip)

	wn := b.Sub(c.konst(8, uint64(w)), count)
	var r, cf ir.Operand
	if left {
		r = b.Or(b.Shl(a, count), b.Shr(fill, wn))
		wide := b.Shl(b.ZExt(a, w+1), count)
		cf = b.Extract(wide, w, 1)
	} else {
		r = b.Or(b.Shr(a, count), b.Shl(fill, wn))
		cf = b.Extract(b.Shr(a, b.Sub(count, c.konst(8, 1))), 0, 1)
	}
	c.setFlag(x86.FlagCF, cf)
	isOne := b.Eq(count, c.konst(8, 1))
	of := b.Xor(b.Extract(r, w-1, 1), b.Extract(a, w-1, 1))
	switch c.cfg.Undef.ShiftMultiOF {
	case UndefCompute:
		c.setFlag(x86.FlagOF, of)
	case UndefZero:
		c.setFlag(x86.FlagOF, b.Ite(isOne, of, c.konst(1, 0)))
	case UndefUnchanged:
		c.setFlag(x86.FlagOF, b.Ite(isOne, of, c.getFlag(x86.FlagOF)))
	}
	c.szpFlags(r, w)
	c.rmWrite(dst, r)
	b.Bind(skip)
	c.done()
}
