package sem

import (
	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// Status-flag computation. x86 defines CF/OF/SF/ZF/AF/PF for most arithmetic;
// where the architecture leaves a flag undefined the UndefPolicy decides.

func (c *ctx) setFlag(bit uint8, v ir.Operand) {
	c.b.Set(x86.Flag(bit), v)
}

func (c *ctx) getFlag(bit uint8) ir.Operand {
	return c.b.Get(x86.Flag(bit))
}

// szpFlags sets SF, ZF and PF from an 8/16/32-bit result.
func (c *ctx) szpFlags(r ir.Operand, w uint8) {
	b := c.b
	c.setFlag(x86.FlagSF, b.Extract(r, w-1, 1))
	c.setFlag(x86.FlagZF, b.Eq(r, c.konst(w, 0)))
	c.setFlag(x86.FlagPF, c.parity(r))
}

// parity computes the x86 PF: set when the low byte has even parity.
func (c *ctx) parity(r ir.Operand) ir.Operand {
	b := c.b
	x := b.Extract(r, 0, 8)
	x = b.Xor(x, b.Shr(x, c.konst(8, 4)))
	x = b.Xor(x, b.Shr(x, c.konst(8, 2)))
	x = b.Xor(x, b.Shr(x, c.konst(8, 1)))
	return b.Not(b.Extract(x, 0, 1))
}

// addFlags sets all six flags for r = a + b + cin at width w.
func (c *ctx) addFlags(a, bOp, cin, r ir.Operand, w uint8) {
	b := c.b
	// Carry out via (w+1)-bit arithmetic.
	wide := b.Add(b.Add(b.ZExt(a, w+1), b.ZExt(bOp, w+1)), b.ZExt(cin, w+1))
	c.setFlag(x86.FlagCF, b.Extract(wide, w, 1))
	// Overflow: operands agree in sign, result disagrees.
	of := b.And(b.Not(b.Xor(a, bOp)), b.Xor(a, r))
	c.setFlag(x86.FlagOF, b.Extract(of, w-1, 1))
	c.setFlag(x86.FlagAF, b.Extract(b.Xor(b.Xor(a, bOp), r), 4, 1))
	c.szpFlags(r, w)
}

// subFlags sets all six flags for r = a - b - cin at width w.
func (c *ctx) subFlags(a, bOp, cin, r ir.Operand, w uint8) {
	b := c.b
	wide := b.Sub(b.Sub(b.ZExt(a, w+1), b.ZExt(bOp, w+1)), b.ZExt(cin, w+1))
	c.setFlag(x86.FlagCF, b.Extract(wide, w, 1))
	of := b.And(b.Xor(a, bOp), b.Xor(a, r))
	c.setFlag(x86.FlagOF, b.Extract(of, w-1, 1))
	c.setFlag(x86.FlagAF, b.Extract(b.Xor(b.Xor(a, bOp), r), 4, 1))
	c.szpFlags(r, w)
}

// logicFlags sets flags for and/or/xor/test: CF=OF=0, SF/ZF/PF computed,
// AF per policy.
func (c *ctx) logicFlags(r ir.Operand, w uint8) {
	c.setFlag(x86.FlagCF, c.konst(1, 0))
	c.setFlag(x86.FlagOF, c.konst(1, 0))
	switch c.cfg.Undef.AFAfterLogic {
	case UndefZero:
		c.setFlag(x86.FlagAF, c.konst(1, 0))
	case UndefCompute:
		c.setFlag(x86.FlagAF, c.konst(1, 0))
	case UndefUnchanged:
		// leave AF
	}
	c.szpFlags(r, w)
}

// incDecFlags sets flags for inc/dec (CF preserved).
func (c *ctx) incDecFlags(a, r ir.Operand, w uint8, isInc bool) {
	b := c.b
	one := c.konst(w, 1)
	if isInc {
		of := b.And(b.Not(b.Xor(a, one)), b.Xor(a, r))
		c.setFlag(x86.FlagOF, b.Extract(of, w-1, 1))
	} else {
		of := b.And(b.Xor(a, one), b.Xor(a, r))
		c.setFlag(x86.FlagOF, b.Extract(of, w-1, 1))
	}
	c.setFlag(x86.FlagAF, b.Extract(b.Xor(b.Xor(a, one), r), 4, 1))
	c.szpFlags(r, w)
}

// condValue computes the 1-bit truth of condition code cc (Jcc/SETcc/CMOVcc
// encoding order).
func (c *ctx) condValue(cc uint8) ir.Operand {
	b := c.b
	base := cc >> 1
	var v ir.Operand
	switch base {
	case 0: // O
		v = c.getFlag(x86.FlagOF)
	case 1: // B (carry)
		v = c.getFlag(x86.FlagCF)
	case 2: // E (zero)
		v = c.getFlag(x86.FlagZF)
	case 3: // BE: CF | ZF
		v = b.Or(c.getFlag(x86.FlagCF), c.getFlag(x86.FlagZF))
	case 4: // S
		v = c.getFlag(x86.FlagSF)
	case 5: // P
		v = c.getFlag(x86.FlagPF)
	case 6: // L: SF != OF
		v = b.Xor(c.getFlag(x86.FlagSF), c.getFlag(x86.FlagOF))
	case 7: // LE: ZF | (SF != OF)
		v = b.Or(c.getFlag(x86.FlagZF),
			b.Xor(c.getFlag(x86.FlagSF), c.getFlag(x86.FlagOF)))
	}
	if cc&1 == 1 {
		v = b.Not(v)
	}
	return v
}

// packEFLAGS materializes the 32-bit EFLAGS image from the individual bits.
func (c *ctx) packEFLAGS() ir.Operand {
	b := c.b
	v := c.konst(32, uint64(x86.EflagsFixed1))
	for _, bit := range x86.AllFlagBits {
		f := b.ZExt(c.getFlag(bit), 32)
		v = b.Or(v, b.Shl(f, c.konst(8, uint64(bit))))
	}
	return v
}

// unpackEFLAGS writes the maskable bits of an EFLAGS image back to the
// individual flag locations. At CPL 0 with no VM: IF, IOPL, and the status
// and control flags are all writable; VM and RF are not set via popf. With
// a 16-bit operand size only the low word is written.
func (c *ctx) unpackEFLAGS(v ir.Operand, includeIFIOPL bool) {
	b := c.b
	writable := []uint8{
		x86.FlagCF, x86.FlagPF, x86.FlagAF, x86.FlagZF, x86.FlagSF,
		x86.FlagTF, x86.FlagDF, x86.FlagOF, x86.FlagNT,
	}
	if c.osz == 32 {
		writable = append(writable, x86.FlagAC, x86.FlagID)
	}
	if includeIFIOPL {
		writable = append(writable, x86.FlagIF, 12, 13)
	}
	for _, bit := range writable {
		c.setFlag(bit, b.Extract(v, bit, 1))
	}
}
