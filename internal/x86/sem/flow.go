package sem

import (
	"strings"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// emitFlow handles branches, calls, returns, software interrupts, iret,
// hlt, and the trivial nop/ud2.
func (c *ctx) emitFlow(name string) bool {
	b := c.b
	switch name {
	case "nop":
		c.done()
		return true
	case "ud2":
		b.RaiseNoErr(x86.ExcUD)
		return true
	case "hlt":
		c.advanceEIP() // EIP points past hlt while halted
		b.Halt()
		return true
	case "jmp_rel8", "jmp_relv":
		c.jumpRel()
		return true
	case "jmp_rmv":
		src := c.resolveRM(c.osz, false)
		t := c.rmRead(src)
		b.Set(x86.EIPLoc, b.ZExt(t, 32))
		b.End()
		return true
	case "call_relv":
		next := b.Add(b.Get(x86.EIPLoc), c.konst(32, uint64(c.inst.Len)))
		c.push(frameVal(c, next))
		target := b.Add(next, c.konst(32, c.inst.Imm))
		if c.osz == 16 {
			target = b.ZExt(b.Extract(target, 0, 16), 32)
		}
		b.Set(x86.EIPLoc, target)
		b.End()
		return true
	case "call_rmv":
		src := c.resolveRM(c.osz, false)
		t := c.rmRead(src)
		next := b.Add(b.Get(x86.EIPLoc), c.konst(32, uint64(c.inst.Len)))
		c.push(frameVal(c, next))
		b.Set(x86.EIPLoc, b.ZExt(t, 32))
		b.End()
		return true
	case "ret":
		t := c.pop()
		b.Set(x86.EIPLoc, b.ZExt(t, 32))
		b.End()
		return true
	case "ret_imm16":
		t := c.pop()
		esp := b.Get(x86.GPR(x86.ESP))
		b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, c.inst.Imm&0xffff)))
		b.Set(x86.EIPLoc, b.ZExt(t, 32))
		b.End()
		return true
	case "jecxz":
		cond := b.Eq(b.Get(x86.GPR(x86.ECX)), c.konst(32, 0))
		c.condBranch(cond)
		return true
	case "loop", "loope", "loopne":
		ecx := b.Sub(b.Get(x86.GPR(x86.ECX)), c.konst(32, 1))
		b.Set(x86.GPR(x86.ECX), ecx)
		cond := b.Ne(ecx, c.konst(32, 0))
		if name == "loope" {
			cond = b.And(cond, c.getFlag(x86.FlagZF))
		} else if name == "loopne" {
			cond = b.And(cond, b.Not(c.getFlag(x86.FlagZF)))
		}
		c.condBranch(cond)
		return true
	case "int3":
		c.advanceEIP()
		b.RaiseSoft(x86.ExcBP)
		return true
	case "int_imm8":
		c.advanceEIP()
		b.RaiseSoft(uint8(c.inst.Imm))
		return true
	case "into":
		of := c.getFlag(x86.FlagOF)
		take := b.NewLabel()
		b.CJump(of, take)
		c.done()
		b.Bind(take)
		c.advanceEIP()
		b.RaiseSoft(x86.ExcOF)
		return true
	case "iret":
		c.iret()
		return true
	}
	if strings.HasPrefix(name, "j") &&
		(strings.HasSuffix(name, "_rel8") || strings.HasSuffix(name, "_relv")) {
		cc := name[1:strings.IndexByte(name, '_')]
		c.condBranch(c.condValue(ccIndex(cc)))
		return true
	}
	return false
}

// jumpRel is the unconditional relative jump.
func (c *ctx) jumpRel() {
	b := c.b
	next := b.Add(b.Get(x86.EIPLoc), c.konst(32, uint64(c.inst.Len)))
	var rel uint64
	if c.inst.ImmSize == 1 {
		rel = uint64(int64(int8(c.inst.Imm))) & 0xffffffff
	} else {
		rel = c.inst.Imm
	}
	target := b.Add(next, c.konst(32, rel))
	if c.osz == 16 {
		target = b.ZExt(b.Extract(target, 0, 16), 32)
	}
	b.Set(x86.EIPLoc, target)
	b.End()
}

// condBranch sets EIP to the taken or fall-through target.
func (c *ctx) condBranch(cond ir.Operand) {
	b := c.b
	next := b.Add(b.Get(x86.EIPLoc), c.konst(32, uint64(c.inst.Len)))
	var rel uint64
	if c.inst.ImmSize == 1 {
		rel = uint64(int64(int8(c.inst.Imm))) & 0xffffffff
	} else {
		rel = c.inst.Imm
	}
	taken := b.Add(next, c.konst(32, rel))
	if c.osz == 16 {
		taken = b.ZExt(b.Extract(taken, 0, 16), 32)
	}
	b.Set(x86.EIPLoc, b.Ite(cond, taken, next))
	b.End()
}

// iret implements the same-privilege protected-mode interrupt return. The
// Hi-Fi (and hardware) read order is innermost-first: EIP, then CS, then
// EFLAGS — the Lo-Fi emulator reads the other way around, observable when
// the three stack slots straddle a page boundary (the paper's finding).
func (c *ctx) iret() {
	b := c.b
	size := uint64(c.osz / 8)
	eipV := c.stackRead(0, uint8(size))
	csV := c.stackRead(uint32(size), uint8(size))
	flV := c.stackRead(uint32(2*size), uint8(size))

	sel := b.Extract(b.ZExt(csV, 32), 0, 16)
	// Same-privilege return requires RPL == CPL (0).
	gp := b.NewLabel()
	rpl := b.Extract(sel, 0, 2)
	b.CJump(b.Ne(rpl, c.konst(2, 0)), gp)

	// Load CS through the descriptor-parse machinery (code segment rules).
	c.loadSegment(x86.CS, sel, true)

	esp := b.Get(x86.GPR(x86.ESP))
	b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, 3*size)))
	b.Set(x86.EIPLoc, b.ZExt(eipV, 32))
	c.unpackEFLAGS(b.ZExt(flV, 32), true)
	b.End()

	b.Bind(gp)
	errc := b.ZExt(b.And(sel, c.konst(16, 0xfffc)), 32)
	b.Raise(x86.ExcGP, errc)
}

// emitString handles the string instruction family with rep prefixes; the
// loop structure is real IR control flow, so symbolic ECX yields one
// explored path per iteration count — these are the instructions that hit
// the paper's path cap.
func (c *ctx) emitString(name string) bool {
	if !strings.HasPrefix(name, "movs") && !strings.HasPrefix(name, "cmps") &&
		!strings.HasPrefix(name, "stos") && !strings.HasPrefix(name, "lods") &&
		!strings.HasPrefix(name, "scas") {
		return false
	}
	op := name[:4]
	w := uint8(8)
	if strings.HasSuffix(name, "_v") {
		w = c.osz
	}
	c.stringOp(op, w)
	return true
}

func (c *ctx) stringOp(op string, w uint8) {
	b := c.b
	size := uint64(w / 8)
	rep := c.inst.Rep || c.inst.RepNE
	srcSeg := x86.DS
	if c.inst.SegOverride >= 0 {
		srcSeg = x86.SegReg(c.inst.SegOverride)
	}

	var top, done ir.Label
	if rep {
		top = b.NewLabel()
		done = b.NewLabel()
		b.Bind(top)
		b.CJump(b.Eq(b.Get(x86.GPR(x86.ECX)), c.konst(32, 0)), done)
	}

	df := c.getFlag(x86.FlagDF)
	delta := b.Ite(df, c.konst(32, -size&0xffffffff), c.konst(32, size))

	esi := b.Get(x86.GPR(x86.ESI))
	edi := b.Get(x86.GPR(x86.EDI))
	var cmpDone ir.Operand // 1-bit termination condition for cmps/scas
	switch op {
	case "movs":
		v := c.readMem(srcSeg, esi, uint8(size), false)
		c.writeMem(x86.ES, edi, uint8(size), false, v)
		b.Set(x86.GPR(x86.ESI), b.Add(esi, delta))
		b.Set(x86.GPR(x86.EDI), b.Add(edi, delta))
	case "stos":
		c.writeMem(x86.ES, edi, uint8(size), false, c.gprRead(0, w))
		b.Set(x86.GPR(x86.EDI), b.Add(edi, delta))
	case "lods":
		v := c.readMem(srcSeg, esi, uint8(size), false)
		c.gprWrite(0, w, v)
		b.Set(x86.GPR(x86.ESI), b.Add(esi, delta))
	case "cmps":
		a := c.readMem(srcSeg, esi, uint8(size), false)
		d := c.readMem(x86.ES, edi, uint8(size), false)
		c.subFlags(a, d, c.konst(1, 0), b.Sub(a, d), w)
		b.Set(x86.GPR(x86.ESI), b.Add(esi, delta))
		b.Set(x86.GPR(x86.EDI), b.Add(edi, delta))
		cmpDone = c.repTermination()
	case "scas":
		a := c.gprRead(0, w)
		d := c.readMem(x86.ES, edi, uint8(size), false)
		c.subFlags(a, d, c.konst(1, 0), b.Sub(a, d), w)
		b.Set(x86.GPR(x86.EDI), b.Add(edi, delta))
		cmpDone = c.repTermination()
	}

	if rep {
		ecx := b.Sub(b.Get(x86.GPR(x86.ECX)), c.konst(32, 1))
		b.Set(x86.GPR(x86.ECX), ecx)
		if cmpDone != (ir.Operand{}) {
			b.CJump(cmpDone, done)
		}
		b.Jump(top)
		b.Bind(done)
	}
	c.done()
}

// repTermination returns the 1-bit "stop repeating" condition for the
// repe/repne forms of cmps/scas.
func (c *ctx) repTermination() ir.Operand {
	zf := c.getFlag(x86.FlagZF)
	if c.inst.RepNE {
		return zf // repne: stop when equal
	}
	return c.b.Not(zf) // repe: stop when not equal
}
