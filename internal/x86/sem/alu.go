package sem

import (
	"strings"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// operandRef abstracts "a place": register, memory, immediate, or a fixed
// register, resolved from the handler-name form tokens.
type operandRef struct {
	rm    *rmOperand
	reg   int // ModRM reg field register (-1 if unused)
	fixed int // fixed GPR index (-1 if unused)
	imm   bool
	width uint8
}

// resolveForm resolves one form token ("rm8", "rv", "al", "immv", ...).
func (c *ctx) resolveForm(tok string, write bool) operandRef {
	switch tok {
	case "rm8":
		o := c.resolveRM(8, write)
		return operandRef{rm: &o, reg: -1, fixed: -1, width: 8}
	case "rmv":
		o := c.resolveRM(c.osz, write)
		return operandRef{rm: &o, reg: -1, fixed: -1, width: c.osz}
	case "r8":
		return operandRef{reg: int(c.inst.RegField()), fixed: -1, width: 8}
	case "rv":
		return operandRef{reg: int(c.inst.RegField()), fixed: -1, width: c.osz}
	case "al":
		return operandRef{reg: -1, fixed: 0, width: 8}
	case "eax":
		return operandRef{reg: -1, fixed: 0, width: c.osz}
	case "imm8":
		return operandRef{reg: -1, fixed: -1, imm: true, width: 8}
	case "immv", "imm8s":
		return operandRef{reg: -1, fixed: -1, imm: true, width: c.osz}
	}
	panic("sem: unknown operand form " + tok)
}

func (c *ctx) refRead(r operandRef) ir.Operand {
	switch {
	case r.rm != nil:
		return c.rmRead(*r.rm)
	case r.reg >= 0:
		return c.gprRead(uint8(r.reg), r.width)
	case r.fixed >= 0:
		return c.gprRead(uint8(r.fixed), r.width)
	case r.imm:
		return c.immOperand(r.width)
	}
	panic("sem: unreadable operand")
}

func (c *ctx) refWrite(r operandRef, v ir.Operand) {
	switch {
	case r.rm != nil:
		c.rmWrite(*r.rm, v)
	case r.reg >= 0:
		c.gprWrite(uint8(r.reg), r.width, v)
	case r.fixed >= 0:
		c.gprWrite(uint8(r.fixed), r.width, v)
	default:
		panic("sem: unwritable operand")
	}
}

// emitALU handles the arithmetic/logic families. It returns false if the
// handler name is not in its domain.
func (c *ctx) emitALU(name string) bool {
	base := strings.TrimSuffix(name, "_alias")
	us := strings.IndexByte(base, '_')
	op := base
	form := ""
	if us >= 0 {
		op, form = base[:us], base[us+1:]
	}
	switch op {
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test":
		c.binALU(op, form)
		return true
	case "inc", "dec":
		c.incDec(op == "inc", form)
		return true
	case "not", "neg":
		c.notNeg(op == "neg", form)
		return true
	case "mul", "imul", "imul1":
		c.mulOne(op != "mul", form)
		return true
	case "imul2", "imul3":
		c.imulMulti(op == "imul3")
		return true
	case "div", "idiv":
		c.divide(op == "idiv", form)
		return true
	case "rol", "ror", "rcl", "rcr", "shl", "shr", "sar":
		c.shiftRotate(op, form)
		return true
	case "aam":
		c.aam()
		return true
	case "aad":
		c.aad()
		return true
	case "cwde":
		c.cwde()
		return true
	case "cdq":
		c.cdq()
		return true
	case "lahf":
		c.lahf()
		return true
	case "sahf":
		c.sahf()
		return true
	case "clc", "stc", "cmc", "cld", "std", "cli", "sti":
		c.flagOp(op)
		return true
	case "xchg":
		c.xchg(form)
		return true
	case "xadd":
		c.xadd(form)
		return true
	case "cmpxchg":
		c.cmpxchg(form)
		return true
	case "bswap":
		c.bswap()
		return true
	}
	return false
}

func splitForm(form string) (dst, src string) {
	us := strings.IndexByte(form, '_')
	return form[:us], form[us+1:]
}

func (c *ctx) binALU(op, form string) {
	dstTok, srcTok := splitForm(form)
	readOnly := op == "cmp" || op == "test"
	dst := c.resolveForm(dstTok, !readOnly)
	src := c.resolveForm(srcTok, false)
	a := c.refRead(dst)
	bv := c.refRead(src)
	b := c.b
	w := dst.width
	zero := c.konst(1, 0)
	var r ir.Operand
	switch op {
	case "add":
		r = b.Add(a, bv)
		c.addFlags(a, bv, zero, r, w)
	case "adc":
		cin := c.getFlag(x86.FlagCF)
		r = b.Add(b.Add(a, bv), b.ZExt(cin, w))
		c.addFlags(a, bv, cin, r, w)
	case "sub", "cmp":
		r = b.Sub(a, bv)
		c.subFlags(a, bv, zero, r, w)
	case "sbb":
		cin := c.getFlag(x86.FlagCF)
		r = b.Sub(b.Sub(a, bv), b.ZExt(cin, w))
		c.subFlags(a, bv, cin, r, w)
	case "and", "test":
		r = b.And(a, bv)
		c.logicFlags(r, w)
	case "or":
		r = b.Or(a, bv)
		c.logicFlags(r, w)
	case "xor":
		r = b.Xor(a, bv)
		c.logicFlags(r, w)
	}
	if !readOnly {
		c.refWrite(dst, r)
	}
	c.done()
}

func (c *ctx) incDec(isInc bool, form string) {
	var dst operandRef
	if form == "r" {
		dst = operandRef{reg: -1, fixed: int(c.inst.Opcode & 7), width: c.osz}
	} else {
		dst = c.resolveForm(form, true)
	}
	a := c.refRead(dst)
	var r ir.Operand
	if isInc {
		r = c.b.Add(a, c.konst(dst.width, 1))
	} else {
		r = c.b.Sub(a, c.konst(dst.width, 1))
	}
	c.incDecFlags(a, r, dst.width, isInc)
	c.refWrite(dst, r)
	c.done()
}

func (c *ctx) notNeg(isNeg bool, form string) {
	dst := c.resolveForm(form, true)
	a := c.refRead(dst)
	if isNeg {
		r := c.b.Neg(a)
		c.subFlags(c.konst(dst.width, 0), a, c.konst(1, 0), r, dst.width)
		c.refWrite(dst, r)
	} else {
		c.refWrite(dst, c.b.Not(a)) // NOT affects no flags
	}
	c.done()
}

// mulOne is the one-operand mul/imul: widening multiply into xDX:xAX (or AX).
func (c *ctx) mulOne(signed bool, form string) {
	src := c.resolveForm(form, false)
	b := c.b
	w := src.width
	a := c.gprRead(0, w) // AL / AX / EAX
	m := c.refRead(src)
	ext := b.ZExt
	if signed {
		ext = b.SExt
	}
	wide := b.Mul(ext(a, 2*w), ext(m, 2*w))
	lo := b.Extract(wide, 0, w)
	hi := b.Extract(wide, w, w)
	if w == 8 {
		c.gprWrite(0, 16, b.Extract(wide, 0, 16)) // AX
	} else {
		c.gprWrite(0, w, lo)
		c.gprWrite(2, w, hi) // DX / EDX
	}
	var over ir.Operand
	if signed {
		over = b.Ne(wide, b.SExt(lo, 2*w))
	} else {
		over = b.Ne(hi, c.konst(w, 0))
	}
	c.setFlag(x86.FlagCF, over)
	c.setFlag(x86.FlagOF, over)
	c.mulUndefFlags(lo, w)
	c.done()
}

func (c *ctx) mulUndefFlags(lo ir.Operand, w uint8) {
	switch c.cfg.Undef.MulLowFlags {
	case UndefCompute:
		c.szpFlags(lo, w)
		c.setFlag(x86.FlagAF, c.konst(1, 0))
	case UndefZero:
		c.setFlag(x86.FlagSF, c.konst(1, 0))
		c.setFlag(x86.FlagZF, c.konst(1, 0))
		c.setFlag(x86.FlagPF, c.konst(1, 0))
		c.setFlag(x86.FlagAF, c.konst(1, 0))
	case UndefUnchanged:
	}
}

// imulMulti is the two/three-operand signed multiply (truncating).
func (c *ctx) imulMulti(threeOp bool) {
	b := c.b
	w := c.osz
	src := c.resolveRM(w, false)
	m := c.rmRead(src)
	var a ir.Operand
	if threeOp {
		a = c.immOperand(w)
	} else {
		a = c.gprRead(c.inst.RegField(), w)
	}
	wide := b.Mul(b.SExt(a, 2*w), b.SExt(m, 2*w))
	r := b.Extract(wide, 0, w)
	over := b.Ne(wide, b.SExt(r, 2*w))
	c.gprWrite(c.inst.RegField(), w, r)
	c.setFlag(x86.FlagCF, over)
	c.setFlag(x86.FlagOF, over)
	c.mulUndefFlags(r, w)
	c.done()
}

// divide implements div/idiv with the #DE checks (divide by zero and
// quotient overflow).
func (c *ctx) divide(signed bool, form string) {
	src := c.resolveForm(form, false)
	b := c.b
	w := src.width
	d := c.refRead(src)
	de := b.NewLabel()
	b.CJump(b.Eq(d, c.konst(w, 0)), de)

	// Dividend: AX for byte ops, xDX:xAX otherwise.
	var dividend ir.Operand
	if w == 8 {
		dividend = c.gprRead(0, 16)
	} else {
		dividend = b.Concat(c.gprRead(2, w), c.gprRead(0, w))
	}
	w2 := 2 * w
	var q, r ir.Operand
	if signed {
		// Signed division via magnitudes, rounding toward zero.
		dw := b.SExt(d, w2)
		negA := b.Extract(dividend, w2-1, 1)
		negB := b.Extract(dw, w2-1, 1)
		absA := b.Ite(negA, b.Neg(dividend), dividend)
		absB := b.Ite(negB, b.Neg(dw), dw)
		qm := b.UDiv(absA, absB)
		rm := b.URem(absA, absB)
		qneg := b.Xor(negA, negB)
		q = b.Ite(qneg, b.Neg(qm), qm)
		r = b.Ite(negA, b.Neg(rm), rm)
		// Overflow: quotient must fit in w bits signed.
		fits := b.Eq(b.SExt(b.Extract(q, 0, w), w2), q)
		b.CJump(b.Not(fits), de)
	} else {
		dw := b.ZExt(d, w2)
		q = b.UDiv(dividend, dw)
		r = b.URem(dividend, dw)
		fits := b.Ult(q, b.Shl(c.konst(w2, 1), c.konst(8, uint64(w))))
		b.CJump(b.Not(fits), de)
	}
	if w == 8 {
		c.gprWrite(0, 16, b.Concat(b.Extract(r, 0, 8), b.Extract(q, 0, 8))) // AH:AL
	} else {
		c.gprWrite(0, w, b.Extract(q, 0, w))
		c.gprWrite(2, w, b.Extract(r, 0, w))
	}
	if c.cfg.Undef.DivFlags == UndefZero {
		for _, f := range []uint8{x86.FlagCF, x86.FlagOF, x86.FlagSF,
			x86.FlagZF, x86.FlagAF, x86.FlagPF} {
			c.setFlag(f, c.konst(1, 0))
		}
	}
	c.done()

	b.Bind(de)
	b.RaiseNoErr(x86.ExcDE)
}

// shiftRotate implements the grp2 shift and rotate family. Forms are
// "<rm8|rmv>_<imm8|1|cl>".
func (c *ctx) shiftRotate(op, form string) {
	dstTok, amtTok := splitForm(form)
	dst := c.resolveForm(dstTok, true)
	b := c.b
	w := dst.width
	var count ir.Operand
	switch amtTok {
	case "imm8":
		count = c.konst(8, c.inst.Imm&0x1f)
	case "1":
		count = c.konst(8, 1)
	case "cl":
		count = b.And(c.gprRead(1, 8), c.konst(8, 0x1f))
	}
	a := c.refRead(dst)

	// A zero (masked) count changes nothing, including flags.
	skip := b.NewLabel()
	zeroCount := b.Eq(count, c.konst(8, 0))
	b.CJump(zeroCount, skip)

	isOne := b.Eq(count, c.konst(8, 1))
	setOF := func(formula ir.Operand, policy UndefChoice) {
		switch policy {
		case UndefCompute:
			c.setFlag(x86.FlagOF, formula)
		case UndefZero:
			c.setFlag(x86.FlagOF, b.Ite(isOne, formula, c.konst(1, 0)))
		case UndefUnchanged:
			c.setFlag(x86.FlagOF, b.Ite(isOne, formula, c.getFlag(x86.FlagOF)))
		}
	}

	switch op {
	case "shl":
		wide := b.Shl(b.ZExt(a, w+1), count)
		r := b.Extract(wide, 0, w)
		cf := b.Extract(wide, w, 1)
		c.setFlag(x86.FlagCF, cf)
		setOF(b.Xor(b.Extract(r, w-1, 1), cf), c.cfg.Undef.ShiftMultiOF)
		c.szpFlags(r, w)
		c.refWrite(dst, r)
	case "shr":
		r := b.Shr(a, count)
		cf := b.Extract(b.Shr(a, b.Sub(count, c.konst(8, 1))), 0, 1)
		c.setFlag(x86.FlagCF, cf)
		setOF(b.Extract(a, w-1, 1), c.cfg.Undef.ShiftMultiOF)
		c.szpFlags(r, w)
		c.refWrite(dst, r)
	case "sar":
		r := b.Sar(a, count)
		cf := b.Extract(b.Sar(a, b.Sub(count, c.konst(8, 1))), 0, 1)
		c.setFlag(x86.FlagCF, cf)
		setOF(c.konst(1, 0), c.cfg.Undef.ShiftMultiOF)
		c.szpFlags(r, w)
		c.refWrite(dst, r)
	case "rol", "ror":
		n := b.URem(b.ZExt(count, 32), c.konst(32, uint64(w)))
		wn := b.Sub(c.konst(32, uint64(w)), n)
		var r ir.Operand
		if op == "rol" {
			r = b.Or(b.Shl(a, n), b.Shr(a, wn))
		} else {
			r = b.Or(b.Shr(a, n), b.Shl(a, wn))
		}
		// Rotate by a multiple of the width leaves the value unchanged, but
		// the shift pair above yields a|0 for n=0 via the wn=w arm: Shl by w
		// gives 0 in our IR, so r = a as required.
		var cf ir.Operand
		if op == "rol" {
			cf = b.Extract(r, 0, 1)
		} else {
			cf = b.Extract(r, w-1, 1)
		}
		c.setFlag(x86.FlagCF, cf)
		var of ir.Operand
		if op == "rol" {
			of = b.Xor(b.Extract(r, w-1, 1), cf)
		} else {
			of = b.Xor(b.Extract(r, w-1, 1), b.Extract(r, w-2, 1))
		}
		setOF(of, c.cfg.Undef.RotCountOF)
		c.refWrite(dst, r)
	case "rcl", "rcr":
		// (w+1)-bit rotate through CF.
		cf := c.getFlag(x86.FlagCF)
		x := b.Concat(cf, a) // bit w = CF
		n := b.URem(b.ZExt(count, 32), c.konst(32, uint64(w)+1))
		wn := b.Sub(c.konst(32, uint64(w)+1), n)
		var rx ir.Operand
		if op == "rcl" {
			rx = b.Or(b.Shl(x, n), b.Shr(x, wn))
		} else {
			rx = b.Or(b.Shr(x, n), b.Shl(x, wn))
		}
		// n = 0 (count multiple of w+1) degenerates to the identity as above.
		nz := b.Eq(n, c.konst(32, 0))
		rx = b.Ite(nz, x, rx)
		r := b.Extract(rx, 0, w)
		ncf := b.Extract(rx, w, 1)
		c.setFlag(x86.FlagCF, ncf)
		var of ir.Operand
		if op == "rcl" {
			of = b.Xor(b.Extract(r, w-1, 1), ncf)
		} else {
			of = b.Xor(b.Extract(r, w-1, 1), b.Extract(r, w-2, 1))
		}
		setOF(of, c.cfg.Undef.RotCountOF)
		c.refWrite(dst, r)
	}
	b.Bind(skip)
	c.done()
}

func (c *ctx) aam() {
	b := c.b
	imm := uint8(c.inst.Imm)
	if imm == 0 {
		b.RaiseNoErr(x86.ExcDE)
		return
	}
	al := c.gprRead(0, 8)
	q := b.UDiv(al, c.konst(8, uint64(imm)))
	r := b.URem(al, c.konst(8, uint64(imm)))
	c.gprWrite(0, 16, b.Concat(q, r)) // AH=q, AL=r
	c.szpFlags(r, 8)
	c.aamUndef()
	c.done()
}

func (c *ctx) aad() {
	b := c.b
	imm := uint8(c.inst.Imm)
	ax := c.gprRead(0, 16)
	al := b.Extract(ax, 0, 8)
	ah := b.Extract(ax, 8, 8)
	r := b.Add(al, b.Mul(ah, c.konst(8, uint64(imm))))
	c.gprWrite(0, 16, b.ZExt(r, 16)) // AH=0
	c.szpFlags(r, 8)
	c.aamUndef()
	c.done()
}

func (c *ctx) aamUndef() {
	if c.cfg.Undef.AamUndef == UndefZero {
		c.setFlag(x86.FlagCF, c.konst(1, 0))
		c.setFlag(x86.FlagOF, c.konst(1, 0))
		c.setFlag(x86.FlagAF, c.konst(1, 0))
	}
}

func (c *ctx) cwde() {
	b := c.b
	if c.osz == 32 {
		c.gprWrite(0, 32, b.SExt(c.gprRead(0, 16), 32))
	} else { // cbw
		c.gprWrite(0, 16, b.SExt(c.gprRead(0, 8), 16))
	}
	c.done()
}

func (c *ctx) cdq() {
	b := c.b
	w := c.osz
	a := c.gprRead(0, w)
	sign := b.Extract(a, w-1, 1)
	fill := b.Ite(sign, c.konst(w, ^uint64(0)), c.konst(w, 0))
	c.gprWrite(2, w, fill)
	c.done()
}

func (c *ctx) lahf() {
	b := c.b
	v := b.ZExt(c.getFlag(x86.FlagCF), 8)
	v = b.Or(v, c.konst(8, 2)) // fixed bit 1
	add := func(bit uint8, pos uint8) {
		v = b.Or(v, b.Shl(b.ZExt(c.getFlag(bit), 8), c.konst(8, uint64(pos))))
	}
	add(x86.FlagPF, 2)
	add(x86.FlagAF, 4)
	add(x86.FlagZF, 6)
	add(x86.FlagSF, 7)
	c.gprWrite(4, 8, v) // AH
	c.done()
}

func (c *ctx) sahf() {
	b := c.b
	ah := c.gprRead(4, 8)
	c.setFlag(x86.FlagCF, b.Extract(ah, 0, 1))
	c.setFlag(x86.FlagPF, b.Extract(ah, 2, 1))
	c.setFlag(x86.FlagAF, b.Extract(ah, 4, 1))
	c.setFlag(x86.FlagZF, b.Extract(ah, 6, 1))
	c.setFlag(x86.FlagSF, b.Extract(ah, 7, 1))
	c.done()
}

func (c *ctx) flagOp(op string) {
	switch op {
	case "clc":
		c.setFlag(x86.FlagCF, c.konst(1, 0))
	case "stc":
		c.setFlag(x86.FlagCF, c.konst(1, 1))
	case "cmc":
		c.setFlag(x86.FlagCF, c.b.Not(c.getFlag(x86.FlagCF)))
	case "cld":
		c.setFlag(x86.FlagDF, c.konst(1, 0))
	case "std":
		c.setFlag(x86.FlagDF, c.konst(1, 1))
	case "cli":
		c.setFlag(x86.FlagIF, c.konst(1, 0))
	case "sti":
		c.setFlag(x86.FlagIF, c.konst(1, 1))
	}
	c.done()
}

func (c *ctx) xchg(form string) {
	if form == "eax_r" {
		w := c.osz
		r := c.inst.Opcode & 7
		a := c.gprRead(0, w)
		bv := c.gprRead(r, w)
		c.gprWrite(0, w, bv)
		c.gprWrite(r, w, a)
		c.done()
		return
	}
	dstTok, _ := splitForm(form)
	dst := c.resolveForm(dstTok, true)
	src := operandRef{reg: int(c.inst.RegField()), fixed: -1, width: dst.width}
	a := c.refRead(dst)
	bv := c.refRead(src)
	c.refWrite(dst, bv)
	c.refWrite(src, a)
	c.done()
}

func (c *ctx) xadd(form string) {
	dstTok, _ := splitForm(form)
	dst := c.resolveForm(dstTok, true)
	src := operandRef{reg: int(c.inst.RegField()), fixed: -1, width: dst.width}
	a := c.refRead(dst)
	bv := c.refRead(src)
	sum := c.b.Add(a, bv)
	c.addFlags(a, bv, c.konst(1, 0), sum, dst.width)
	c.refWrite(src, a)
	c.refWrite(dst, sum)
	c.done()
}

// cmpxchg: compare the accumulator with dst; on match store src, otherwise
// reload the accumulator. The destination is written in either case, so the
// Hi-Fi ordering verifies write permission before any register update.
func (c *ctx) cmpxchg(form string) {
	dstTok, _ := splitForm(form)
	dst := c.resolveForm(dstTok, true) // write-translated up front
	w := dst.width
	b := c.b
	acc := c.gprRead(0, w)
	old := c.refRead(dst)
	src := c.gprRead(c.inst.RegField(), w)
	c.subFlags(acc, old, c.konst(1, 0), b.Sub(acc, old), w)
	equal := b.Eq(acc, old)
	c.refWrite(dst, b.Ite(equal, src, old))
	// Accumulator reloaded only on mismatch.
	c.gprWrite(0, w, b.Ite(equal, acc, old))
	c.done()
}

func (c *ctx) bswap() {
	b := c.b
	r := c.inst.Opcode & 7
	a := c.gprRead(r, 32)
	b0 := b.Extract(a, 0, 8)
	b1 := b.Extract(a, 8, 8)
	b2 := b.Extract(a, 16, 8)
	b3 := b.Extract(a, 24, 8)
	c.gprWrite(r, 32, b.Concat(b0, b.Concat(b1, b.Concat(b2, b3))))
	c.done()
}
