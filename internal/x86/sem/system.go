package sem

import (
	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// translateLin is the paging-only translation used for GDT/IDT accesses,
// which bypass segmentation.
func (c *ctx) translateLin(lin ir.Operand, size uint8, write bool) *memRef {
	b := c.b
	frameA := c.walk(lin, write)
	inPage := b.And(lin, c.konst(32, 0xfff))
	physA := b.Or(frameA, inPage)
	m := &memRef{size: size, lin: lin, physA: physA}
	if size == 1 {
		m.cross = c.konst(1, 0)
		m.frameB = c.konst(32, 0)
		return m
	}
	cross := b.Ugt(b.Add(inPage, c.konst(32, uint64(size-1))), c.konst(32, 0xfff))
	crossT := b.NewTemp(1)
	b.Move(crossT, cross)
	frameB := b.NewTemp(32)
	b.Move(frameB, c.konst(32, 0))
	skip := b.NewLabel()
	b.CJump(b.Not(cross), skip)
	b.Move(frameB, c.walk(b.Add(lin, c.konst(32, uint64(size-1))), write))
	b.Bind(skip)
	m.cross = crossT
	m.frameB = frameB
	return m
}

func (c *ctx) readLin(lin ir.Operand, size uint8) ir.Operand {
	return c.memLoad(c.translateLin(lin, size, false))
}

// loadSegment implements the protected-mode segment-register load: selector
// checks, GDT fetch, the descriptor parse (the multi-path computation the
// paper summarizes during exploration), privilege/type validation, the
// accessed-bit write-back, and the descriptor-cache update.
func (c *ctx) loadSegment(seg x86.SegReg, sel ir.Operand, forCS bool) {
	b := c.b
	gpSel := b.NewLabel()
	gp0 := b.NewLabel()
	notPresent := b.NewLabel()
	loaded := b.NewLabel()

	selMasked := b.And(sel, c.konst(16, 0xfffc))
	isNull := b.Eq(selMasked, c.konst(16, 0))
	if seg == x86.SS || forCS {
		// Null SS or CS is a #GP(0).
		b.CJump(isNull, gp0)
	} else {
		// A null selector loads an unusable segment.
		notNull := b.NewLabel()
		b.CJump(b.Not(isNull), notNull)
		b.Set(x86.SegSel(seg), sel)
		b.Set(x86.SegAttr(seg), c.konst(16, 0))
		b.Set(x86.SegBase(seg), c.konst(32, 0))
		b.Set(x86.SegLimit(seg), c.konst(32, 0))
		b.Jump(loaded)
		b.Bind(notNull)
	}

	// No local descriptor table in this machine: TI set is a #GP.
	ti := b.Extract(sel, 2, 1)
	b.CJump(ti, gpSel)

	// Descriptor must lie within the GDT limit.
	gdtLimit := b.Get(x86.Loc{Kind: x86.LocGDTRLimit})
	offEnd := b.Add(b.ZExt(b.And(sel, c.konst(16, 0xfff8)), 32), c.konst(32, 7))
	b.CJump(b.Ugt(offEnd, gdtLimit), gpSel)

	gdtBase := b.Get(x86.Loc{Kind: x86.LocGDTRBase})
	descLin := b.Add(gdtBase, b.ZExt(b.And(sel, c.konst(16, 0xfff8)), 32))
	lo := c.readLin(descLin, 4)
	hiRef := c.translateLin(b.Add(descLin, c.konst(32, 4)), 4, false)
	hi := c.memLoad(hiRef)

	// --- descriptor parse and validation (the summarized computation) ---
	kind := loadData
	if seg == x86.SS {
		kind = loadSS
	} else if forCS {
		kind = loadCS
	}
	base, limit, attr := c.parseDescriptor(lo, hi, sel, kind, gpSel, notPresent)

	// Accessed bit write-back: only when clear (the check celer skips).
	accessed := b.Extract(hi, 8, 1)
	skipA := b.NewLabel()
	b.CJump(accessed, skipA)
	c.memStore(c.translateLin(b.Add(descLin, c.konst(32, 4)), 4, true),
		b.Or(hi, c.konst(32, 0x100)))
	b.Bind(skipA)

	b.Set(x86.SegSel(seg), sel)
	b.Set(x86.SegBase(seg), base)
	b.Set(x86.SegLimit(seg), limit)
	b.Set(x86.SegAttr(seg), attr)
	b.Jump(loaded)

	b.Bind(gpSel)
	b.Raise(x86.ExcGP, b.ZExt(selMasked, 32))
	b.Bind(gp0)
	b.Raise(x86.ExcGP, c.konst(32, 0))
	b.Bind(notPresent)
	vec := uint8(x86.ExcNP)
	if seg == x86.SS {
		vec = x86.ExcSS
	}
	b.Raise(vec, b.ZExt(selMasked, 32))

	b.Bind(loaded)
}

// segLoadKind selects the validation rules for a segment load.
type segLoadKind int

const (
	loadData segLoadKind = iota
	loadSS
	loadCS
)

// parseDescriptor emits the descriptor-cache computation the way a careful
// emulator implements it: a 16-way dispatch on the type nibble with
// per-type validity rules, a separate branch for the granularity scaling,
// and the DPL/RPL checks — a multi-path region with a couple dozen paths.
// This is the computation that, when segment state is symbolic, the
// exploration summarizes once instead of re-exploring per segment (the
// paper's ×23⁶ observation). Fault paths jump to gpSel or notPresent; the
// returned operands are the cache fields (attr already 16 bits, with the
// accessed bit set as caches record it).
func (c *ctx) parseDescriptor(lo, hi, sel ir.Operand, kind segLoadKind,
	gpSel, notPresent ir.Label) (base, limit, attr ir.Operand) {

	b := c.b
	rpl := b.Extract(sel, 0, 2)
	dpl := b.Extract(hi, 13, 2)
	s := b.Extract(hi, 12, 1)
	b.CJump(b.Not(s), gpSel) // system descriptor

	switch kind {
	case loadSS:
		b.CJump(b.Ne(rpl, c.konst(2, 0)), gpSel)
		b.CJump(b.Ne(dpl, c.konst(2, 0)), gpSel)
	case loadCS:
		// Non-conforming code requires DPL == CPL (0); checked per type.
	}

	limitT := b.NewTemp(32)
	join := b.NewLabel()

	// Type nibble: bit0 accessed, bit1 W/R, bit2 E/C, bit3 code.
	typ := b.Extract(hi, 8, 4)
	for t := uint64(0); t < 16; t++ {
		next := b.NewLabel()
		b.CJump(b.Ne(typ, c.konst(4, t)), next)
		isCode := t&8 != 0
		rw := t&2 != 0
		conforming := isCode && t&4 != 0
		valid := true
		switch kind {
		case loadSS:
			valid = !isCode && rw
		case loadCS:
			valid = isCode
		default:
			valid = !isCode || rw // data, or readable code
		}
		if !valid {
			b.Jump(gpSel)
			b.Bind(next)
			continue
		}
		if kind == loadCS && !conforming {
			b.CJump(b.Ne(dpl, c.konst(2, 0)), gpSel)
		}
		if kind == loadData && !conforming {
			// DPL ≥ RPL for data and non-conforming code.
			b.CJump(b.Ult(dpl, rpl), gpSel)
		}
		// Granularity: a real branch, not a select.
		raw := b.Or(b.And(lo, c.konst(32, 0xffff)), b.And(hi, c.konst(32, 0xf0000)))
		g := b.Extract(hi, 23, 1)
		gSet := b.NewLabel()
		b.CJump(g, gSet)
		b.Move(limitT, raw)
		b.Jump(join)
		b.Bind(gSet)
		b.Move(limitT, b.Or(b.Shl(raw, c.konst(8, 12)), c.konst(32, 0xfff)))
		b.Jump(join)
		b.Bind(next)
	}
	// The 16 cases are exhaustive; anything else is unreachable.
	b.Jump(gpSel)

	b.Bind(join)
	p := b.Extract(hi, 15, 1)
	b.CJump(b.Not(p), notPresent)

	base = b.Or(b.Or(b.Shr(lo, c.konst(8, 16)),
		b.Shl(b.And(hi, c.konst(32, 0xff)), c.konst(8, 16))),
		b.And(hi, c.konst(32, 0xff000000)))
	attr32 := b.Or(b.And(b.Shr(hi, c.konst(8, 8)), c.konst(32, 0xff)),
		b.Shl(b.And(b.Shr(hi, c.konst(8, 20)), c.konst(32, 0xf)), c.konst(8, 8)))
	attr32 = b.Or(attr32, c.konst(32, 1)) // caches record the segment accessed
	return base, limitT, b.Extract(attr32, 0, 16)
}

// segRegOfPushPop maps the implicit-segment handler names.
var segOps = map[string]x86.SegReg{
	"es": x86.ES, "cs": x86.CS, "ss": x86.SS,
	"ds": x86.DS, "fs": x86.FS, "gs": x86.GS,
}

// emitSystem handles segment-register loads/stores, far pointer loads,
// control registers, MSRs, descriptor-table instructions, and cpuid.
func (c *ctx) emitSystem(name string) bool {
	b := c.b
	switch name {
	case "mov_sreg_rm16":
		sr := x86.SegReg(c.inst.RegField())
		if sr == x86.CS || sr > x86.GS {
			b.RaiseNoErr(x86.ExcUD)
			return true
		}
		src := c.resolveRM(16, false)
		c.loadSegment(sr, c.rmRead(src), false)
		c.done()
		return true
	case "mov_rmv_sreg":
		sr := x86.SegReg(c.inst.RegField())
		if sr > x86.GS {
			b.RaiseNoErr(x86.ExcUD)
			return true
		}
		dst := c.resolveRM(16, true)
		c.rmWrite(dst, b.Get(x86.SegSel(sr)))
		c.done()
		return true
	case "push_es", "push_cs", "push_ss", "push_ds", "push_fs", "push_gs":
		sr := segOps[name[5:]]
		c.push(b.ZExt(b.Get(x86.SegSel(sr)), c.osz))
		c.done()
		return true
	case "pop_es", "pop_ss", "pop_ds", "pop_fs", "pop_gs":
		sr := segOps[name[4:]]
		v := c.stackRead(0, c.osz/8)
		c.loadSegment(sr, b.Extract(b.ZExt(v, 32), 0, 16), false)
		esp := b.Get(x86.GPR(x86.ESP))
		b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, uint64(c.osz/8))))
		c.done()
		return true
	case "les", "lds", "lfs", "lgs", "lss":
		c.farLoad(segOps[name[1:]])
		return true
	case "mov_cr_r":
		c.movToCR()
		return true
	case "mov_r_cr":
		cr := c.inst.RegField()
		if cr != 0 && cr != 2 && cr != 3 && cr != 4 {
			b.RaiseNoErr(x86.ExcUD)
			return true
		}
		c.gprWrite(c.inst.RM(), 32, b.Get(x86.CR(cr)))
		c.done()
		return true
	case "rdmsr":
		c.rdwrMSR(false)
		return true
	case "wrmsr":
		c.rdwrMSR(true)
		return true
	case "rdtsc":
		tsc := b.Get(x86.MSR(0))
		c.gprWrite(0, 32, b.Extract(tsc, 0, 32))
		c.gprWrite(2, 32, b.Extract(tsc, 32, 32))
		c.done()
		return true
	case "cpuid":
		c.cpuid()
		return true
	case "lgdt", "lidt":
		seg, off := c.effAddr()
		limit := c.readMem(seg, off, 2, false)
		base := c.readMem(seg, b.Add(off, c.konst(32, 2)), 4, false)
		if name == "lgdt" {
			b.Set(x86.Loc{Kind: x86.LocGDTRLimit}, b.ZExt(limit, 32))
			b.Set(x86.Loc{Kind: x86.LocGDTRBase}, base)
		} else {
			b.Set(x86.Loc{Kind: x86.LocIDTRLimit}, b.ZExt(limit, 32))
			b.Set(x86.Loc{Kind: x86.LocIDTRBase}, base)
		}
		c.done()
		return true
	case "sgdt", "sidt":
		seg, off := c.effAddr()
		var lim, base ir.Operand
		if name == "sgdt" {
			lim = b.Get(x86.Loc{Kind: x86.LocGDTRLimit})
			base = b.Get(x86.Loc{Kind: x86.LocGDTRBase})
		} else {
			lim = b.Get(x86.Loc{Kind: x86.LocIDTRLimit})
			base = b.Get(x86.Loc{Kind: x86.LocIDTRBase})
		}
		m := c.translate(seg, off, 6, true, false)
		c.memStoreSplit(m, b.Extract(lim, 0, 16), base)
		c.done()
		return true
	case "smsw":
		dst := c.resolveRM(c.osz, true)
		cr0 := b.Get(x86.CR(0))
		if c.osz == 16 {
			c.rmWrite(dst, b.Extract(cr0, 0, 16))
		} else {
			c.rmWrite(dst, cr0)
		}
		c.done()
		return true
	case "lmsw":
		src := c.resolveRM(16, false)
		v := b.ZExt(c.rmRead(src), 32)
		cr0 := b.Get(x86.CR(0))
		// lmsw can set but not clear PE; only the low 4 bits are written.
		newPE := b.Or(b.Extract(cr0, 0, 1), b.Extract(v, 0, 1))
		low := b.Concat(b.Extract(v, 1, 3), newPE)
		b.Set(x86.CR(0), b.Concat(b.Extract(cr0, 4, 28), low))
		c.done()
		return true
	case "invlpg":
		// No TLB is modeled; the effective address is computed but not
		// dereferenced, exactly like hardware.
		c.effAddr()
		c.done()
		return true
	case "clts":
		cr0 := b.Get(x86.CR(0))
		b.Set(x86.CR(0), b.And(cr0, c.konst(32, ^uint64(1<<x86.CR0TS))))
		c.done()
		return true
	case "verr", "verw":
		c.verify(name == "verw")
		return true
	}
	return false
}

// verify implements verr/verw: probe whether a selector would be readable
// (or writable) at the current privilege level, reporting through ZF and
// never faulting on a bad selector — the segment-check machinery exposed as
// a query instruction.
func (c *ctx) verify(forWrite bool) {
	b := c.b
	src := c.resolveRM(16, false)
	sel := c.rmRead(src)

	no := b.NewLabel()
	yes := b.NewLabel()
	done := b.NewLabel()

	// Null selector, LDT reference, or out-of-limit descriptor: not valid.
	b.CJump(b.Eq(b.And(sel, c.konst(16, 0xfffc)), c.konst(16, 0)), no)
	b.CJump(b.Extract(sel, 2, 1), no)
	gdtLimit := b.Get(x86.Loc{Kind: x86.LocGDTRLimit})
	offEnd := b.Add(b.ZExt(b.And(sel, c.konst(16, 0xfff8)), 32), c.konst(32, 7))
	b.CJump(b.Ugt(offEnd, gdtLimit), no)

	gdtBase := b.Get(x86.Loc{Kind: x86.LocGDTRBase})
	descLin := b.Add(gdtBase, b.ZExt(b.And(sel, c.konst(16, 0xfff8)), 32))
	hi := c.readLin(b.Add(descLin, c.konst(32, 4)), 4)

	// Must be a present code/data descriptor.
	b.CJump(b.Not(b.Extract(hi, 12, 1)), no) // S
	b.CJump(b.Not(b.Extract(hi, 15, 1)), no) // P
	isCode := b.Extract(hi, 11, 1)
	rw := b.Extract(hi, 9, 1)
	conform := b.Extract(hi, 10, 1)
	dpl := b.Extract(hi, 13, 2)
	rpl := b.Extract(sel, 0, 2)
	// Privilege applies to data and non-conforming code: DPL ≥ RPL (CPL=0).
	applies := b.Or(b.Not(isCode), b.Not(conform))
	b.CJump(b.And(applies, b.Ult(dpl, rpl)), no)
	if forWrite {
		// Writable data only.
		b.CJump(isCode, no)
		b.CJump(b.Not(rw), no)
	} else {
		// Data always readable; code needs the readable bit.
		b.CJump(b.And(isCode, b.Not(rw)), no)
	}
	b.Jump(yes)

	b.Bind(yes)
	c.setFlag(x86.FlagZF, c.konst(1, 1))
	b.Jump(done)
	b.Bind(no)
	c.setFlag(x86.FlagZF, c.konst(1, 0))
	b.Bind(done)
	c.done()
}

// memStoreSplit stores a 16-bit then a 32-bit value at consecutive offsets
// of a pre-translated 6-byte reference (sgdt/sidt).
func (c *ctx) memStoreSplit(m *memRef, lim16, base32 ir.Operand) {
	b := c.b
	for i := uint8(0); i < 2; i++ {
		b.Store(c.byteAddr(m, i), b.Extract(lim16, i*8, 8), 1)
	}
	for i := uint8(0); i < 4; i++ {
		b.Store(c.byteAddr(m, 2+i), b.Extract(base32, i*8, 8), 1)
	}
}

// farLoad implements les/lds/lfs/lgs/lss: load a full pointer (offset +
// selector) from memory, then the segment register, then the GPR.
func (c *ctx) farLoad(sr x86.SegReg) {
	b := c.b
	seg, off := c.effAddr()
	offBytes := c.osz / 8
	readOffset := func() ir.Operand { return c.readMem(seg, off, offBytes, false) }
	readSel := func() ir.Operand {
		return c.readMem(seg, b.Add(off, c.konst(32, uint64(offBytes))), 2, false)
	}
	var offV, selV ir.Operand
	if c.cfg.FarLoadSelectorFirst {
		selV = readSel()
		offV = readOffset()
	} else {
		offV = readOffset()
		selV = readSel()
	}
	c.loadSegment(sr, selV, false)
	c.gprWrite(c.inst.RegField(), c.osz, offV)
	c.done()
}

// movToCR implements mov %reg, %crN with the architectural consistency
// checks.
func (c *ctx) movToCR() {
	b := c.b
	cr := c.inst.RegField()
	v := c.gprRead(c.inst.RM(), 32)
	gp := b.NewLabel()
	switch cr {
	case 0:
		// PG requires PE.
		pg := b.Extract(v, x86.CR0PG, 1)
		pe := b.Extract(v, x86.CR0PE, 1)
		b.CJump(b.And(pg, b.Not(pe)), gp)
		// NW without CD is invalid.
		nw := b.Extract(v, x86.CR0NW, 1)
		cd := b.Extract(v, x86.CR0CD, 1)
		b.CJump(b.And(nw, b.Not(cd)), gp)
		b.Set(x86.CR(0), v)
	case 2:
		b.Set(x86.CR(2), v)
	case 3:
		b.Set(x86.CR(3), b.And(v, c.konst(32, 0xfffff018)))
	case 4:
		// Reserved CR4 bits must be zero.
		b.CJump(b.Ne(b.And(v, c.konst(32, ^uint64(0x1ff))), c.konst(32, 0)), gp)
		b.Set(x86.CR(4), v)
	default:
		b.RaiseNoErr(x86.ExcUD)
		return
	}
	c.done()
	b.Bind(gp)
	b.Raise(x86.ExcGP, c.konst(32, 0))
}

// rdwrMSR implements rdmsr/wrmsr with the per-index dispatch; an
// unrecognized index raises #GP(0) — the check the Lo-Fi emulator omits.
func (c *ctx) rdwrMSR(write bool) {
	b := c.b
	ecx := b.Get(x86.GPR(x86.ECX))
	done := b.NewLabel()
	for slot, index := range x86.MSRs {
		next := b.NewLabel()
		b.CJump(b.Ne(ecx, c.konst(32, uint64(index))), next)
		if write {
			v := b.Concat(b.Get(x86.GPR(x86.EDX)), b.Get(x86.GPR(x86.EAX)))
			b.Set(x86.MSR(slot), v)
		} else {
			v := b.Get(x86.MSR(slot))
			c.gprWrite(0, 32, b.Extract(v, 0, 32))
			c.gprWrite(2, 32, b.Extract(v, 32, 32))
		}
		b.Jump(done)
		b.Bind(next)
	}
	b.Raise(x86.ExcGP, c.konst(32, 0))
	b.Bind(done)
	c.done()
}

// cpuid returns fixed, implementation-independent values so that cpuid
// itself is not a spurious difference source between the reference
// implementations.
func (c *ctx) cpuid() {
	b := c.b
	eax := b.Get(x86.GPR(x86.EAX))
	leaf1 := b.NewLabel()
	other := b.NewLabel()
	done := b.NewLabel()

	b.CJump(b.Ne(eax, c.konst(32, 0)), leaf1)
	b.Set(x86.GPR(x86.EAX), c.konst(32, 1))
	b.Set(x86.GPR(x86.EBX), c.konst(32, 0x656b6f50)) // "Poke"
	b.Set(x86.GPR(x86.EDX), c.konst(32, 0x554d4545)) // "EEMU"
	b.Set(x86.GPR(x86.ECX), c.konst(32, 0x20555043)) // "CPU "
	b.Jump(done)

	b.Bind(leaf1)
	b.CJump(b.Ne(eax, c.konst(32, 1)), other)
	b.Set(x86.GPR(x86.EAX), c.konst(32, 0x00000611))
	b.Set(x86.GPR(x86.EBX), c.konst(32, 0))
	b.Set(x86.GPR(x86.ECX), c.konst(32, 0))
	b.Set(x86.GPR(x86.EDX), c.konst(32, 0x00000011)) // FPU-less, PSE+TSC
	b.Jump(done)

	b.Bind(other)
	for _, r := range []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX} {
		b.Set(x86.GPR(r), c.konst(32, 0))
	}
	b.Bind(done)
	c.done()
}
