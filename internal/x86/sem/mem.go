package sem

import (
	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// Memory access pipeline: segmentation check → linear address → page walk
// (with A/D bit maintenance) → physical transfer. Each check is a branch in
// the IR, so symbolic exploration enumerates exactly the fault and success
// behaviors a careful interpreter implements — the state space the paper's
// Figure 3 targets.

// memRef is a translated memory operand, ready for fault-free transfer.
type memRef struct {
	size   uint8      // bytes (1, 2 or 4)
	lin    ir.Operand // 32-bit linear address of the first byte
	physA  ir.Operand // physical address of the first byte
	frameB ir.Operand // 4-KiB frame of the last byte's page (valid if cross)
	cross  ir.Operand // 1-bit: access spans a page boundary
}

// segFault raises the segment-check fault: #SS for stack-relative accesses,
// #GP otherwise, both with a zero error code.
func (c *ctx) segFaultLabel(stackSem bool) (ir.Label, func()) {
	l := c.b.NewLabel()
	emit := func() {
		c.b.Bind(l)
		vec := uint8(x86.ExcGP)
		if stackSem {
			vec = x86.ExcSS
		}
		c.b.Raise(vec, c.konst(32, 0))
	}
	return l, emit
}

// segCheck verifies that [off, off+size-1] is a permitted access in seg and
// returns the linear address. stackSem selects #SS instead of #GP.
func (c *ctx) segCheck(seg x86.SegReg, off ir.Operand, size uint8, write, stackSem bool) ir.Operand {
	b := c.b
	fault, emitFault := c.segFaultLabel(stackSem)
	ok := b.NewLabel()

	attr := b.Get(x86.SegAttr(seg))
	limit := b.Get(x86.SegLimit(seg))
	// Unusable (P=0 in the cache, e.g. a null selector was loaded).
	present := b.Extract(attr, 7, 1)
	b.CJump(b.Not(present), fault)

	last := b.Add(off, c.konst(32, uint64(size-1)))
	wrapped := b.Ult(last, off)
	b.CJump(wrapped, fault)

	isCode := b.Extract(attr, 3, 1)
	bit1 := b.Extract(attr, 1, 1) // data: writable; code: readable
	codeL := b.NewLabel()
	b.CJump(isCode, codeL)

	// Data segment: write permission and expansion direction.
	if write {
		b.CJump(b.Not(bit1), fault)
	}
	expandDown := b.Extract(attr, 2, 1)
	expL := b.NewLabel()
	b.CJump(expandDown, expL)
	// Expand-up: fault when last > limit.
	b.CJump(b.Ugt(last, limit), fault)
	b.Jump(ok)
	// Expand-down: valid range is (limit, upper]; upper is 0xffffffff with
	// D/B set, 0xffff otherwise.
	b.Bind(expL)
	b.CJump(b.Ule(off, limit), fault)
	db := b.Extract(attr, 10, 1)
	upper := b.Ite(db, c.konst(32, 0xffffffff), c.konst(32, 0xffff))
	b.CJump(b.Ugt(last, upper), fault)
	b.Jump(ok)

	// Code segment: never writable; reads require the readable bit.
	b.Bind(codeL)
	if write {
		b.Jump(fault)
	} else {
		b.CJump(b.Not(bit1), fault)
		b.CJump(b.Ugt(last, limit), fault)
		b.Jump(ok)
	}

	emitFault()
	b.Bind(ok)
	return b.Add(b.Get(x86.SegBase(seg)), off)
}

// pageFault sets CR2 and raises #PF.
func (c *ctx) pageFault(lin ir.Operand, present bool, write bool) {
	b := c.b
	b.Set(x86.CR(2), lin)
	var err uint64
	if present {
		err |= x86.PFErrP
	}
	if write {
		err |= x86.PFErrWR
	}
	b.Raise(x86.ExcPF, c.konst(32, err))
}

// walk translates the page containing lin and returns its 4-KiB physical
// frame base. It raises #PF on not-present or protection failures, honors
// CR4.PSE large pages, enforces CR0.WP for supervisor writes, and maintains
// the accessed and dirty bits — each decision a distinct explored path.
func (c *ctx) walk(lin ir.Operand, write bool) ir.Operand {
	b := c.b
	frame := b.NewTemp(32)
	join := b.NewLabel()

	// With paging disabled, linear addresses are physical. The PG bit is
	// concrete during exploration, so this branch costs no paths there.
	pg := b.Extract(b.Get(x86.CR(0)), x86.CR0PG, 1)
	pagingOn := b.NewLabel()
	b.CJump(pg, pagingOn)
	b.Move(frame, b.And(lin, c.konst(32, 0xfffff000)))
	b.Jump(join)
	b.Bind(pagingOn)

	cr3 := b.Get(x86.CR(3))
	pdBase := b.And(cr3, c.konst(32, 0xfffff000))
	pdIdx := b.Shr(lin, c.konst(8, 22))
	pdeAddr := b.Or(pdBase, b.Shl(pdIdx, c.konst(8, 2)))
	pde := b.Load(pdeAddr, 4)

	npL := b.NewLabel()
	protL := b.NewLabel()
	b.CJump(b.Not(b.Extract(pde, 0, 1)), npL) // PDE.P

	wp := b.Extract(b.Get(x86.CR(0)), x86.CR0WP, 1)
	checkWrite := func(entry ir.Operand) {
		if !write {
			return
		}
		rw := b.Extract(entry, 1, 1)
		bad := b.And(wp, b.Not(rw))
		b.CJump(bad, protL)
	}

	// Large page when CR4.PSE and PDE.PS.
	pse := b.Extract(b.Get(x86.CR(4)), x86.CR4PSE, 1)
	large := b.And(pse, b.Extract(pde, 7, 1))
	largeL := b.NewLabel()
	b.CJump(large, largeL)

	// 4-KiB path.
	checkWrite(pde)
	c.setBitIfClear(pdeAddr, pde, 5) // PDE.A
	ptBase := b.And(pde, c.konst(32, 0xfffff000))
	ptIdx := b.And(b.Shr(lin, c.konst(8, 12)), c.konst(32, 0x3ff))
	pteAddr := b.Or(ptBase, b.Shl(ptIdx, c.konst(8, 2)))
	pte := b.Load(pteAddr, 4)
	b.CJump(b.Not(b.Extract(pte, 0, 1)), npL) // PTE.P
	checkWrite(pte)
	pte2 := c.setBitIfClear(pteAddr, pte, 5) // PTE.A
	if write {
		c.setBitIfClearFrom(pteAddr, pte, pte2, 6) // PTE.D
	}
	b.Move(frame, b.And(pte, c.konst(32, 0xfffff000)))
	b.Jump(join)

	// 4-MiB path: the PDE maps the page directly.
	b.Bind(largeL)
	checkWrite(pde)
	pdeL := c.setBitIfClear(pdeAddr, pde, 5)
	if write {
		c.setBitIfClearFrom(pdeAddr, pde, pdeL, 6)
	}
	big := b.And(pde, c.konst(32, 0xffc00000))
	within := b.And(lin, c.konst(32, 0x003ff000))
	b.Move(frame, b.Or(big, within))
	b.Jump(join)

	b.Bind(npL)
	c.pageFault(lin, false, write)
	b.Bind(protL)
	c.pageFault(lin, true, write)

	b.Bind(join)
	return frame
}

// setBitIfClear emits the checked read-modify-write that hardware uses for
// accessed/dirty maintenance: a store happens only when the bit was clear.
// It returns the entry value as it now stands in memory.
func (c *ctx) setBitIfClear(addr, entry ir.Operand, bit uint8) ir.Operand {
	b := c.b
	updated := b.Or(entry, c.konst(32, 1<<bit))
	skip := b.NewLabel()
	b.CJump(b.Extract(entry, bit, 1), skip)
	b.Store(addr, updated, 4)
	b.Bind(skip)
	return updated
}

// setBitIfClearFrom is setBitIfClear for a second bit of the same entry: the
// decision uses the original entry value, the store must carry the earlier
// update (A set) as well.
func (c *ctx) setBitIfClearFrom(addr, orig, current ir.Operand, bit uint8) {
	b := c.b
	skip := b.NewLabel()
	b.CJump(b.Extract(orig, bit, 1), skip)
	b.Store(addr, b.Or(current, c.konst(32, 1<<bit)), 4)
	b.Bind(skip)
}

// translate runs the full segment + paging pipeline for an access of size
// bytes and returns a fault-free memRef. With write set, write permission is
// verified now; the subsequent memStore cannot fault.
func (c *ctx) translate(seg x86.SegReg, off ir.Operand, size uint8, write, stackSem bool) *memRef {
	b := c.b
	lin := c.segCheck(seg, off, size, write, stackSem)
	frameA := c.walk(lin, write)
	inPage := b.And(lin, c.konst(32, 0xfff))
	physA := b.Or(frameA, inPage)

	m := &memRef{size: size, lin: lin, physA: physA}
	if size == 1 {
		m.cross = c.konst(1, 0)
		m.frameB = c.konst(32, 0)
		return m
	}
	cross := b.Ugt(b.Add(inPage, c.konst(32, uint64(size-1))), c.konst(32, 0xfff))
	crossT := b.NewTemp(1)
	b.Move(crossT, cross)
	frameB := b.NewTemp(32)
	b.Move(frameB, c.konst(32, 0))
	skip := b.NewLabel()
	b.CJump(b.Not(cross), skip)
	linB := b.Add(lin, c.konst(32, uint64(size-1)))
	b.Move(frameB, c.walk(linB, write))
	b.Bind(skip)
	m.cross = crossT
	m.frameB = frameB
	return m
}

// byteAddr computes the physical address of byte i of the reference,
// selecting between the two translated pages without branching.
func (c *ctx) byteAddr(m *memRef, i uint8) ir.Operand {
	b := c.b
	if i == 0 {
		return m.physA
	}
	linI := b.Add(m.lin, c.konst(32, uint64(i)))
	inPageI := b.And(linI, c.konst(32, 0xfff))
	onB := b.Ugt(b.Add(b.And(m.lin, c.konst(32, 0xfff)), c.konst(32, uint64(i))),
		c.konst(32, 0xfff))
	fromB := b.Or(m.frameB, inPageI)
	fromA := b.Add(m.physA, c.konst(32, uint64(i)))
	return b.Ite(b.And(m.cross, onB), fromB, fromA)
}

// memLoad reads the referenced bytes (little endian).
func (c *ctx) memLoad(m *memRef) ir.Operand {
	b := c.b
	v := b.Load(c.byteAddr(m, 0), 1)
	for i := uint8(1); i < m.size; i++ {
		v = b.Concat(b.Load(c.byteAddr(m, i), 1), v)
	}
	return v
}

// memStore writes the referenced bytes (little endian). The reference must
// have been translated with write permission.
func (c *ctx) memStore(m *memRef, v ir.Operand) {
	b := c.b
	for i := uint8(0); i < m.size; i++ {
		b.Store(c.byteAddr(m, i), b.Extract(v, i*8, 8), 1)
	}
}

// readMem is the one-shot load helper.
func (c *ctx) readMem(seg x86.SegReg, off ir.Operand, size uint8, stackSem bool) ir.Operand {
	return c.memLoad(c.translate(seg, off, size, false, stackSem))
}

// writeMem is the one-shot store helper (translate + store).
func (c *ctx) writeMem(seg x86.SegReg, off ir.Operand, size uint8, stackSem bool, v ir.Operand) {
	c.memStore(c.translate(seg, off, size, true, stackSem), v)
}

// --- stack helpers ----------------------------------------------------------

// push writes v (osz wide) below ESP, updating ESP only after the write has
// been verified — the atomic ordering QEMU gets wrong for some instructions.
func (c *ctx) push(v ir.Operand) {
	b := c.b
	size := c.osz / 8
	esp := b.Get(x86.GPR(x86.ESP))
	newESP := b.Sub(esp, c.konst(32, uint64(size)))
	c.writeMem(x86.SS, newESP, size, true, v)
	b.Set(x86.GPR(x86.ESP), newESP)
}

// push32 pushes a 32-bit value regardless of operand size (exception frames).
func (c *ctx) push32(v ir.Operand) {
	b := c.b
	esp := b.Get(x86.GPR(x86.ESP))
	newESP := b.Sub(esp, c.konst(32, 4))
	c.writeMem(x86.SS, newESP, 4, true, v)
	b.Set(x86.GPR(x86.ESP), newESP)
}

// pop reads the osz-wide top of stack and bumps ESP.
func (c *ctx) pop() ir.Operand {
	b := c.b
	size := c.osz / 8
	esp := b.Get(x86.GPR(x86.ESP))
	v := c.readMem(x86.SS, esp, size, true)
	b.Set(x86.GPR(x86.ESP), b.Add(esp, c.konst(32, uint64(size))))
	return v
}

// popNoCommit reads the value at ESP+delta without moving ESP (for
// multi-value pops whose ESP update must be deferred, e.g. iret).
func (c *ctx) stackRead(delta uint32, size uint8) ir.Operand {
	b := c.b
	esp := b.Get(x86.GPR(x86.ESP))
	return c.readMem(x86.SS, b.Add(esp, c.konst(32, uint64(delta))), size, true)
}
