// Package sem is the semantics compiler: it translates decoded x86
// instructions into internal/ir programs, including inline segmentation
// checks, two-level page walks, exception raises, and status-flag updates.
// The Hi-Fi emulator (internal/fidelis) and the hardware simulator
// (internal/hwsim) both execute these programs; the symbolic execution
// engine (internal/symex) explores their paths. Architecturally-undefined
// behavior (certain status flags) is factored into an UndefPolicy so that
// the Bochs-like and hardware-like implementations can disagree exactly
// where real ones do.
package sem

import (
	"fmt"

	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// UndefChoice selects a behavior for one class of undefined results.
type UndefChoice uint8

// Undefined-behavior choices.
const (
	UndefCompute   UndefChoice = iota // derive from the result like a careful CPU
	UndefZero                         // force the flag(s) to zero
	UndefUnchanged                    // leave the previous value
)

// UndefPolicy fixes every architecturally-undefined status-flag result.
// Real hardware and real emulators pick different points here, which is one
// of the difference classes the paper reports.
type UndefPolicy struct {
	AFAfterLogic UndefChoice // AF after and/or/xor/test
	MulLowFlags  UndefChoice // SF/ZF/AF/PF after mul/imul
	ShiftMultiOF UndefChoice // OF when shift count > 1
	DivFlags     UndefChoice // all six flags after div/idiv
	BsfZeroDest  UndefChoice // destination when bsf/bsr source is zero
	AamUndef     UndefChoice // CF/OF/AF after aam/aad
	RotCountOF   UndefChoice // OF when rotate count != 1
}

// PolicyHardware is the undefined-flag behavior of the hardware oracle.
var PolicyHardware = UndefPolicy{
	AFAfterLogic: UndefZero,
	MulLowFlags:  UndefCompute,
	ShiftMultiOF: UndefCompute,
	DivFlags:     UndefUnchanged,
	BsfZeroDest:  UndefUnchanged,
	AamUndef:     UndefZero,
	RotCountOF:   UndefCompute,
}

// PolicyBochs is the undefined-flag behavior of the Hi-Fi emulator; it
// differs from hardware on a few classes (a real Bochs-vs-CPU divergence).
var PolicyBochs = UndefPolicy{
	AFAfterLogic: UndefZero,
	MulLowFlags:  UndefZero,
	ShiftMultiOF: UndefZero,
	DivFlags:     UndefUnchanged,
	BsfZeroDest:  UndefUnchanged,
	AamUndef:     UndefZero,
	RotCountOF:   UndefCompute,
}

// Config selects implementation-specific behaviors of the compiled
// semantics.
type Config struct {
	Undef UndefPolicy
	// FarLoadSelectorFirst fetches the selector word before the offset word
	// in lds/les/lfs/lgs/lss. Hardware fetches the offset first; Bochs the
	// opposite (the paper's lfs fetch-order finding). Observable through
	// page-table accessed bits and #PF ordering across a page boundary.
	FarLoadSelectorFirst bool
}

// HardwareConfig is the configuration of the hardware oracle.
var HardwareConfig = Config{Undef: PolicyHardware}

// BochsConfig is the configuration of the Hi-Fi emulator.
var BochsConfig = Config{Undef: PolicyBochs, FarLoadSelectorFirst: true}

// ctx carries per-instruction compilation state.
type ctx struct {
	b    *ir.Builder
	inst *x86.Inst
	cfg  Config
	osz  uint8 // operand size in bits (16 or 32)
}

func (c *ctx) konst(w uint8, v uint64) ir.Operand { return ir.C(w, v) }

// Compile translates one decoded instruction into an IR program.
func Compile(inst *x86.Inst, cfg Config) *ir.Program {
	b := ir.NewBuilder(inst.Spec.Name)
	c := &ctx{b: b, inst: inst, cfg: cfg, osz: uint8(inst.OpSize)}

	// LOCK prefix legality: only on the architected read-modify-write forms,
	// and only with a memory destination.
	if inst.Lock && (!inst.Spec.LockOK || inst.IsRegForm() || !inst.HasModRM) {
		b.RaiseNoErr(x86.ExcUD)
		return b.Build()
	}
	c.emit()
	return b.Build()
}

// advanceEIP writes the post-instruction EIP; call it only on paths that
// complete without faulting (fault paths must leave EIP at the instruction).
func (c *ctx) advanceEIP() {
	eip := c.b.Get(x86.EIPLoc)
	c.b.Set(x86.EIPLoc, c.b.Add(eip, c.konst(32, uint64(c.inst.Len))))
}

// done advances EIP and ends the program.
func (c *ctx) done() {
	c.advanceEIP()
	c.b.End()
}

// emit dispatches on the per-instruction handler name.
func (c *ctx) emit() {
	name := c.inst.Spec.Name
	switch {
	case c.emitALU(name):
	case c.emitMovLea(name):
	case c.emitStack(name):
	case c.emitFlow(name):
	case c.emitSystem(name):
	case c.emitString(name):
	case c.emitBitOps(name):
	default:
		panic(fmt.Sprintf("sem: no semantics for handler %q", name))
	}
}

// --- operand plumbing -----------------------------------------------------

// gprPart reads an 8/16/32-bit view of a GPR by ModRM index. For 8-bit,
// indices 0-3 are the low bytes of eax..ebx and 4-7 the high bytes.
func (c *ctx) gprRead(idx uint8, w uint8) ir.Operand {
	switch w {
	case 32:
		return c.b.Get(x86.GPR(x86.Reg(idx)))
	case 16:
		return c.b.Extract(c.b.Get(x86.GPR(x86.Reg(idx))), 0, 16)
	case 8:
		r := x86.Reg(idx & 3)
		full := c.b.Get(x86.GPR(r))
		if idx < 4 {
			return c.b.Extract(full, 0, 8)
		}
		return c.b.Extract(full, 8, 8)
	}
	panic("sem: bad gpr width")
}

// gprWrite writes an 8/16/32-bit view of a GPR by ModRM index, preserving
// the untouched bits.
func (c *ctx) gprWrite(idx uint8, w uint8, v ir.Operand) {
	switch w {
	case 32:
		c.b.Set(x86.GPR(x86.Reg(idx)), v)
	case 16:
		loc := x86.GPR(x86.Reg(idx))
		old := c.b.Get(loc)
		c.b.Set(loc, c.b.Concat(c.b.Extract(old, 16, 16), v))
	case 8:
		r := x86.Reg(idx & 3)
		loc := x86.GPR(r)
		old := c.b.Get(loc)
		if idx < 4 {
			c.b.Set(loc, c.b.Concat(c.b.Extract(old, 8, 24), v))
		} else {
			hi := c.b.Extract(old, 16, 16)
			lo := c.b.Extract(old, 0, 8)
			c.b.Set(loc, c.b.Concat(hi, c.b.Concat(v, lo)))
		}
	default:
		panic("sem: bad gpr width")
	}
}

// effAddr computes the ModRM effective address (32-bit addressing) and the
// segment it is relative to (honoring overrides).
func (c *ctx) effAddr() (seg x86.SegReg, off ir.Operand) {
	in := c.inst
	mod, rm := in.Mod(), in.RM()
	if mod == 3 {
		panic("sem: effAddr on register form")
	}
	b := c.b
	disp := c.konst(32, uint64(in.Disp))
	var addr ir.Operand
	seg = x86.DS
	switch {
	case rm == 4: // SIB
		sib := in.SIB
		scale := sib >> 6
		index := sib >> 3 & 7
		base := sib & 7
		var sum ir.Operand
		if base == 5 && mod == 0 {
			sum = disp
		} else {
			sum = b.Get(x86.GPR(x86.Reg(base)))
			if base == 4 || base == 5 { // ESP or EBP base → stack segment
				seg = x86.SS
			}
			sum = b.Add(sum, disp)
		}
		if index != 4 {
			iv := b.Get(x86.GPR(x86.Reg(index)))
			iv = b.Shl(iv, c.konst(8, uint64(scale)))
			sum = b.Add(sum, iv)
		}
		addr = sum
	case mod == 0 && rm == 5:
		addr = disp
	default:
		addr = b.Add(b.Get(x86.GPR(x86.Reg(rm))), disp)
		if rm == 5 { // EBP-relative defaults to SS
			seg = x86.SS
		}
	}
	if in.SegOverride >= 0 {
		seg = x86.SegReg(in.SegOverride)
	}
	return seg, addr
}

// rmOperand describes a resolved r/m operand: either a register index or a
// checked memory location.
type rmOperand struct {
	isReg bool
	reg   uint8
	mem   *memRef
	width uint8 // bits
}

// resolveRM prepares the r/m operand. If write is set, memory forms are
// translated with write permission up front, so a later store cannot fault —
// this is the Hi-Fi ordering that makes instruction effects atomic.
func (c *ctx) resolveRM(w uint8, write bool) rmOperand {
	in := c.inst
	if in.Mod() == 3 {
		return rmOperand{isReg: true, reg: in.RM(), width: w}
	}
	seg, off := c.effAddr()
	mem := c.translate(seg, off, w/8, write, false)
	return rmOperand{mem: mem, width: w}
}

func (c *ctx) rmRead(o rmOperand) ir.Operand {
	if o.isReg {
		return c.gprRead(o.reg, o.width)
	}
	return c.memLoad(o.mem)
}

func (c *ctx) rmWrite(o rmOperand, v ir.Operand) {
	if o.isReg {
		c.gprWrite(o.reg, o.width, v)
		return
	}
	c.memStore(o.mem, v)
}

// opWidth returns the data width in bits for an operand kind.
func (c *ctx) opWidth(k x86.OperandKind) uint8 {
	switch k {
	case x86.OpdRM8, x86.OpdR8, x86.OpdAL, x86.OpdImm8, x86.OpdRegOp8,
		x86.OpdMoffs8, x86.OpdCL:
		return 8
	case x86.OpdRM16, x86.OpdImm16:
		return 16
	case x86.OpdRMv, x86.OpdRv, x86.OpdEAXv, x86.OpdImmv, x86.OpdImm8s,
		x86.OpdRegOpv, x86.OpdMoffsv:
		return c.osz
	}
	return 32
}

// immOperand returns the (already extended) first immediate at width w.
func (c *ctx) immOperand(w uint8) ir.Operand {
	return c.konst(w, c.inst.Imm)
}
