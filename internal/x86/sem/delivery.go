package sem

import (
	"pokeemu/internal/ir"
	"pokeemu/internal/x86"
)

// CompileDelivery builds the IR program that delivers exception or software
// interrupt `vector` through the IDT: gate fetch and validation, the
// EFLAGS/CS/EIP (+ error code) pushes, flag clearing, and the CS:EIP load.
// A Raise outcome from this program means delivery itself failed, which the
// harness reports as a shutdown (the triple-fault analogue).
//
// Symbolic exploration never executes delivery: instruction paths end at the
// raise, exactly as in the paper (Section 3.3).
func CompileDelivery(vector uint8, errCode uint32, hasErr bool, cfg Config) *ir.Program {
	b := ir.NewBuilder("deliver")
	c := &ctx{b: b, cfg: cfg, osz: 32, inst: &x86.Inst{OpSize: 32}}

	fail := b.NewLabel()

	// Gate must lie inside the IDT limit.
	idtLimit := b.Get(x86.Loc{Kind: x86.LocIDTRLimit})
	end := c.konst(32, uint64(vector)*8+7)
	b.CJump(b.Ugt(end, idtLimit), fail)

	idtBase := b.Get(x86.Loc{Kind: x86.LocIDTRBase})
	gateLin := b.Add(idtBase, c.konst(32, uint64(vector)*8))
	lo := c.readLin(gateLin, 4)
	hi := c.readLin(b.Add(gateLin, c.konst(32, 4)), 4)

	// Present, and a 32-bit interrupt (0xE) or trap (0xF) gate.
	b.CJump(b.Not(b.Extract(hi, 15, 1)), fail)
	gtype := b.Extract(hi, 8, 4)
	isInt := b.Eq(gtype, c.konst(4, 0xe))
	isTrap := b.Eq(gtype, c.konst(4, 0xf))
	b.CJump(b.Not(b.Or(isInt, isTrap)), fail)

	// Push the interrupted context.
	c.push32(c.packEFLAGS())
	c.push32(b.ZExt(b.Get(x86.SegSel(x86.CS)), 32))
	c.push32(b.Get(x86.EIPLoc))
	if hasErr {
		c.push32(c.konst(32, uint64(errCode)))
	}

	// TF, NT, VM, RF always clear; IF clears for interrupt gates.
	for _, f := range []uint8{x86.FlagTF, x86.FlagNT, x86.FlagVM, x86.FlagRF} {
		c.setFlag(f, c.konst(1, 0))
	}
	oldIF := c.getFlag(x86.FlagIF)
	c.setFlag(x86.FlagIF, b.Ite(isInt, c.konst(1, 0), oldIF))

	// Target code segment and entry point.
	sel := b.Extract(lo, 16, 16)
	c.loadSegment(x86.CS, sel, true)
	offset := b.Or(b.And(lo, c.konst(32, 0xffff)), b.And(hi, c.konst(32, 0xffff0000)))
	b.Set(x86.EIPLoc, offset)
	b.End()

	b.Bind(fail)
	b.RaiseNoErr(x86.ExcDF)
	return b.Build()
}

// DescriptorParsePorts names the GPR locations the standalone parse program
// uses as its input/output ports. The program form lets the summarization
// machinery (internal/symex) explore the parse once, in isolation, and
// substitute the resulting formula wherever a descriptor cache is derived
// from symbolic GDT bytes — the Section 3.3.2 optimization.
var DescriptorParsePorts = struct {
	Lo, Hi, Sel       x86.Loc // inputs: raw descriptor words and selector
	Base, Limit, Attr x86.Loc // outputs: cache fields
}{
	Lo:    x86.GPR(x86.EAX),
	Hi:    x86.GPR(x86.EDX),
	Sel:   x86.GPR(x86.ECX),
	Base:  x86.GPR(x86.EBX),
	Limit: x86.GPR(x86.ESI),
	Attr:  x86.GPR(x86.EDI),
}

// DescriptorParseProgram builds a standalone program computing the
// descriptor-cache fields from raw descriptor words, with all the
// validation branching of a data-segment load (for segment register sr
// semantics). Fault paths end in the matching Raise.
func DescriptorParseProgram(forSS bool) *ir.Program {
	b := ir.NewBuilder("descparse")
	c := &ctx{b: b, cfg: HardwareConfig, osz: 32, inst: &x86.Inst{OpSize: 32}}
	p := DescriptorParsePorts

	lo := b.Get(p.Lo)
	hi := b.Get(p.Hi)
	sel := b.Extract(b.Get(p.Sel), 0, 16)
	gpSel := b.NewLabel()
	np := b.NewLabel()

	kind := loadData
	if forSS {
		kind = loadSS
	}
	base, limit, attr := c.parseDescriptor(lo, hi, sel, kind, gpSel, np)

	b.Set(p.Base, base)
	b.Set(p.Limit, limit)
	b.Set(p.Attr, b.ZExt(attr, 32))
	b.End()

	b.Bind(gpSel)
	b.Raise(x86.ExcGP, b.ZExt(b.And(sel, c.konst(16, 0xfffc)), 32))
	b.Bind(np)
	vec := uint8(x86.ExcNP)
	if forSS {
		vec = x86.ExcSS
	}
	b.Raise(vec, b.ZExt(b.And(sel, c.konst(16, 0xfffc)), 32))
	return b.Build()
}
