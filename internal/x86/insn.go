package x86

import "fmt"

// OperandKind is a template describing where an operand comes from in the
// encoding and how wide it is. Kinds ending in v are operand-size sensitive
// (32-bit by default, 16-bit under the 66 prefix).
type OperandKind uint8

// Operand templates.
const (
	OpdNone   OperandKind = iota
	OpdRM8                // ModRM r/m, byte
	OpdRMv                // ModRM r/m, operand size
	OpdRM16               // ModRM r/m, word regardless of operand size
	OpdR8                 // ModRM reg field, byte register
	OpdRv                 // ModRM reg field, operand size
	OpdSreg               // ModRM reg field names a segment register
	OpdCRn                // ModRM reg field names a control register
	OpdM                  // ModRM, memory forms only (lea, far loads, lgdt)
	OpdImm8               // 8-bit immediate, zero-extended
	OpdImm8s              // 8-bit immediate, sign-extended to operand size
	OpdImm16              // 16-bit immediate
	OpdImmv               // operand-size immediate
	OpdRel8               // 8-bit branch displacement
	OpdRelv               // operand-size branch displacement
	OpdAL                 // fixed AL
	OpdEAXv               // fixed eAX at operand size
	OpdCL                 // fixed CL
	OpdOne                // literal 1 (D0/D1 shift forms)
	OpdRegOp8             // register in the opcode's low 3 bits, byte
	OpdRegOpv             // register in the opcode's low 3 bits, operand size
	OpdMoffs8             // absolute 32-bit moffs, byte data
	OpdMoffsv             // absolute 32-bit moffs, operand-size data
	OpdSegES              // implicit segment register operands (push/pop seg)
	OpdSegCS
	OpdSegSS
	OpdSegDS
	OpdSegFS
	OpdSegGS
)

// usesModRM reports whether the operand kind requires a ModRM byte.
func (k OperandKind) usesModRM() bool {
	switch k {
	case OpdRM8, OpdRMv, OpdRM16, OpdR8, OpdRv, OpdSreg, OpdCRn, OpdM:
		return true
	}
	return false
}

// OpSpec describes one per-instruction implementation: the unit the paper
// calls "per-instruction code". The instruction-set exploration enumerates
// distinct OpSpecs reachable from the decoder, and the semantics compiler
// dispatches on Name.
type OpSpec struct {
	Name     string // unique handler identifier
	Mn       string // mnemonic for display
	Operands []OperandKind
	LockOK   bool // the LOCK prefix is architecturally permitted (memory forms)
	Priv     bool // requires CPL 0
	AliasEnc bool // redundant/undocumented alias encoding (e.g. opcode 0x82,
	// grp3 /1): valid on hardware and in the Hi-Fi emulator, rejected by the
	// Lo-Fi emulator — one of the paper's encoding-difference findings.
}

// HasModRM reports whether the instruction's encoding includes a ModRM byte.
func (s *OpSpec) HasModRM() bool {
	for _, k := range s.Operands {
		if k.usesModRM() {
			return true
		}
	}
	return false
}

// Inst is a fully decoded instruction.
type Inst struct {
	Raw []byte // the consumed bytes
	Len int

	Spec    *OpSpec
	Opcode  byte
	TwoByte bool

	OpSize      int // 16 or 32
	SegOverride int // SegReg value, or -1 for none
	Lock        bool
	Rep         bool // F3
	RepNE       bool // F2

	HasModRM bool
	ModRM    byte
	HasSIB   bool
	SIB      byte
	Disp     uint32
	DispSize int

	Imm     uint64 // first immediate (sign/zero extension already applied)
	ImmSize int
	Imm2    uint32 // second immediate (enter imm16,imm8)
}

// Mod returns the ModRM mod field.
func (i *Inst) Mod() byte { return i.ModRM >> 6 }

// RegField returns the ModRM reg field.
func (i *Inst) RegField() byte { return i.ModRM >> 3 & 7 }

// RM returns the ModRM r/m field.
func (i *Inst) RM() byte { return i.ModRM & 7 }

// IsRegForm reports whether the r/m operand denotes a register.
func (i *Inst) IsRegForm() bool { return i.HasModRM && i.Mod() == 3 }

func (i *Inst) String() string {
	if i.Spec == nil {
		return "(bad)"
	}
	return fmt.Sprintf("%s[% x]", i.Spec.Mn, i.Raw)
}

// Decode errors.
type DecodeError struct {
	Kind DecodeErrKind
	Pos  int
}

// DecodeErrKind classifies decode failures.
type DecodeErrKind uint8

// Decode failure kinds.
const (
	ErrUndefined DecodeErrKind = iota // no such instruction (#UD)
	ErrTruncated                      // ran out of input bytes
	ErrTooLong                        // more than 15 bytes consumed (#GP)
)

func (e *DecodeError) Error() string {
	switch e.Kind {
	case ErrTruncated:
		return fmt.Sprintf("x86: truncated instruction at byte %d", e.Pos)
	case ErrTooLong:
		return "x86: instruction longer than 15 bytes"
	default:
		return fmt.Sprintf("x86: undefined opcode at byte %d", e.Pos)
	}
}
