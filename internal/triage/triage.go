package triage

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pokeemu/internal/corpus"
	"pokeemu/internal/harness"
	"pokeemu/internal/testgen"
)

// ReportVersion is the serialized triage-report format version; DiffReports
// and the CLI's -diff mode refuse mismatched versions.
const ReportVersion = 1

// Options configure a triage run.
type Options struct {
	// Minimize shrinks every case via Minimize; off, the report is the
	// known/new partition and clustering only.
	Minimize bool
	// Budget bounds oracle runs per minimized case (0 = DefaultBudget).
	Budget int
	// TestMaxSteps is the per-execution emulator step budget, which must
	// match the campaign that produced the cases so the divergences
	// reproduce (0 = harness.DefaultMaxSteps).
	TestMaxSteps int
	// Workers parallelizes per-case minimization. Like the campaign pools,
	// results merge in index order, so the report is byte-identical for any
	// value.
	Workers int
	// Baseline partitions cases into known and new; nil marks everything
	// new.
	Baseline *Baseline
	// Corpus, when non-nil, caches minimized cases content-addressed by the
	// original program, implementation pair, and budgets, so re-triaging a
	// campaign (or another job sharing the corpus) replays minimization
	// results instead of re-running oracles.
	Corpus *corpus.Corpus
}

// TriagedCase is one divergent test after triage.
type TriagedCase struct {
	TestID    string `json:"test_id"`
	Handler   string `json:"handler"`
	Mnemonic  string `json:"mnemonic"`
	ImplA     string `json:"impl_a"`
	ImplB     string `json:"impl_b"`
	Signature string `json:"signature"`
	RootCause string `json:"root_cause"`
	Known     bool   `json:"known"`

	Minimized *Minimized `json:"minimized,omitempty"`
}

// ClusterSummary aggregates the cases sharing one (impl, signature) pair.
type ClusterSummary struct {
	Impl      string `json:"impl"`
	Signature string `json:"signature"`
	RootCause string `json:"root_cause"`
	Count     int    `json:"count"`
	Known     bool   `json:"known"`
	Example   string `json:"example"` // lexically-smallest test ID in the cluster
}

// Report is the triage output: the known/new partition, the per-cluster
// aggregation, and (when minimization ran) the shrunk cases. Every slice is
// deterministically ordered, and the whole structure is map-free, so both
// Render and Encode are byte-stable.
type Report struct {
	Version int `json:"version"`

	Total      int `json:"total"` // divergent tests triaged
	Known      int `json:"known"`
	New        int `json:"new"`
	NewCluster int `json:"new_clusters"`

	Clusters []ClusterSummary `json:"clusters"`
	Cases    []TriagedCase    `json:"cases"`
}

// Run triages a set of divergent cases: partition against the baseline,
// cluster, and (optionally) minimize each case on a bounded worker pool.
// Cases are processed in a canonical order and merged by index, so the
// report depends only on the input set, the baseline, and the budgets —
// never on Workers.
func Run(cases []CaseInfo, opts Options) (*Report, error) {
	ordered := append([]CaseInfo(nil), cases...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].TestID != ordered[j].TestID {
			return ordered[i].TestID < ordered[j].TestID
		}
		return ordered[i].ImplB < ordered[j].ImplB
	})

	rows := make([]TriagedCase, len(ordered))
	errs := make([]error, len(ordered))
	maxSteps := opts.TestMaxSteps
	if maxSteps <= 0 {
		maxSteps = harness.DefaultMaxSteps
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	boot := testgen.BaselineInit()

	runCase := func(i int) {
		c := ordered[i]
		rows[i] = TriagedCase{
			TestID: c.TestID, Handler: c.Handler, Mnemonic: c.Mnemonic,
			ImplA: c.ImplA, ImplB: c.ImplB,
			Signature: c.Signature, RootCause: c.RootCause,
			Known: opts.Baseline.Match(c.ImplB, c.Signature),
		}
		if !opts.Minimize {
			return
		}
		key := corpus.TriageKey{
			ProgSHA: corpus.ExecProgSHA(boot, c.Prog),
			Handler: c.Handler, ImplA: c.ImplA, ImplB: c.ImplB,
			MaxSteps: maxSteps, Budget: budget, TriageVersion: Version,
		}
		if opts.Corpus != nil {
			if ent, ok := opts.Corpus.GetTriage(key); ok {
				var m Minimized
				if json.Unmarshal(ent.Min, &m) == nil {
					rows[i].Minimized = &m
					return
				}
			}
		}
		m, err := Minimize(c, maxSteps, budget)
		if err != nil {
			errs[i] = fmt.Errorf("triage: minimizing %s: %w", c.TestID, err)
			return
		}
		rows[i].Minimized = m
		if opts.Corpus != nil {
			if blob, err := json.Marshal(m); err == nil {
				// A failed cache write only costs the next run a re-minimize.
				_ = opts.Corpus.PutTriage(&corpus.TriageEntry{Key: key, Min: blob})
			}
		}
	}
	runIndexed(opts.Workers, len(ordered), runCase)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	r := &Report{Version: ReportVersion, Cases: rows, Total: len(rows)}
	type ckey struct{ impl, sig string }
	clusters := map[ckey]*ClusterSummary{}
	for _, row := range rows {
		if row.Known {
			r.Known++
		} else {
			r.New++
		}
		k := ckey{row.ImplB, row.Signature}
		cl := clusters[k]
		if cl == nil {
			cl = &ClusterSummary{
				Impl: row.ImplB, Signature: row.Signature,
				RootCause: row.RootCause, Known: row.Known, Example: row.TestID,
			}
			clusters[k] = cl
		}
		cl.Count++
		if row.TestID < cl.Example {
			cl.Example = row.TestID
		}
	}
	for _, cl := range clusters {
		r.Clusters = append(r.Clusters, *cl)
		if !cl.Known {
			r.NewCluster++
		}
	}
	sort.Slice(r.Clusters, func(i, j int) bool {
		if r.Clusters[i].Impl != r.Clusters[j].Impl {
			return r.Clusters[i].Impl < r.Clusters[j].Impl
		}
		return r.Clusters[i].Signature < r.Clusters[j].Signature
	})
	return r, nil
}

// runIndexed executes n index-addressed tasks over a bounded worker pool.
// Tasks write only to index-disjoint slots, making scheduling order
// unobservable — the same contract as the campaign's pool, without its
// panic isolation (triage tasks report errors through their slot).
func runIndexed(workers, n int, task func(i int)) {
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// SuggestedBaseline builds the baseline that would suppress every cluster
// in the report — what a CI pipeline records after a triaged run so the
// next run reports only regressions.
func (r *Report) SuggestedBaseline() *Baseline {
	b := NewBaseline()
	b.Update(r)
	return b
}

// Render formats the report for humans. Fully deterministic: same cases,
// baseline, and budgets produce identical bytes for any worker count.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "triage: %d divergent tests in %d clusters; known %d tests, new %d tests (%d new clusters)\n",
		r.Total, len(r.Clusters), r.Known, r.New, r.NewCluster)
	for _, cl := range r.Clusters {
		status := "NEW  "
		if cl.Known {
			status = "known"
		}
		fmt.Fprintf(&b, "  %s %-8s %-44s %4d tests  %s\n",
			status, cl.Impl, cl.Signature, cl.Count, cl.RootCause)
	}
	var minimized, reproduced, origBytes, finalBytes, runs int
	for _, c := range r.Cases {
		if c.Minimized == nil {
			continue
		}
		minimized++
		origBytes += c.Minimized.OrigBytes
		finalBytes += c.Minimized.FinalBytes
		runs += c.Minimized.OracleRuns
		if c.Minimized.Reproduced {
			reproduced++
		}
	}
	if minimized > 0 {
		fmt.Fprintf(&b, "minimized: %d/%d reproduced; bytes %d -> %d (%.1f%%), %d oracle runs\n",
			reproduced, minimized, origBytes, finalBytes,
			100*float64(finalBytes)/float64(max(1, origBytes)), runs)
		for _, c := range r.Cases {
			m := c.Minimized
			if m == nil || !m.Reproduced {
				continue
			}
			fmt.Fprintf(&b, "  %-24s %-8s %3dB/%d atoms -> %3dB/%d atoms  (-%d atoms, %d imm bytes zeroed, -%dB instr, %d runs)\n",
				c.TestID, c.ImplB, m.OrigBytes, m.OrigAtoms, m.FinalBytes, m.FinalAtoms,
				m.DroppedAtoms, m.ZeroedBytes, m.TruncatedBytes, m.OracleRuns)
		}
	}
	return b.String()
}

// Encode serializes the report with a stable byte representation.
func (r *Report) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("triage: encoding report: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeReport parses and version-checks a serialized report.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("triage: decoding report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("triage: report version %d, want %d", r.Version, ReportVersion)
	}
	return &r, nil
}
