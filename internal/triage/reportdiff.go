package triage

import (
	"fmt"
	"strings"
)

// ClusterChange is one cluster present in both reports whose test count
// moved.
type ClusterChange struct {
	Impl      string `json:"impl"`
	Signature string `json:"signature"`
	RootCause string `json:"root_cause"`
	OldCount  int    `json:"old_count"`
	NewCount  int    `json:"new_count"`
}

// Delta is the regression diff between two triage reports: only what
// changed, so a CI log shows the drift and nothing else. Appeared clusters
// are the regressions a gate fails on; Disappeared clusters are fixed (or
// masked) divergences; Changed clusters kept their signature but shifted
// test counts.
type Delta struct {
	OldTotal int `json:"old_total"`
	NewTotal int `json:"new_total"`

	Appeared    []ClusterSummary `json:"appeared,omitempty"`
	Disappeared []ClusterSummary `json:"disappeared,omitempty"`
	Changed     []ClusterChange  `json:"changed,omitempty"`
}

// Empty reports whether the two reports cluster identically.
func (d *Delta) Empty() bool {
	return len(d.Appeared) == 0 && len(d.Disappeared) == 0 && len(d.Changed) == 0
}

// DiffReports compares two triage reports by cluster (impl + signature) and
// emits only the delta. Both inputs keep their clusters sorted, so the
// output ordering is deterministic.
func DiffReports(old, new *Report) *Delta {
	d := &Delta{OldTotal: old.Total, NewTotal: new.Total}
	type ckey struct{ impl, sig string }
	oldBy := make(map[ckey]ClusterSummary, len(old.Clusters))
	for _, cl := range old.Clusters {
		oldBy[ckey{cl.Impl, cl.Signature}] = cl
	}
	seen := make(map[ckey]bool, len(new.Clusters))
	for _, cl := range new.Clusters {
		k := ckey{cl.Impl, cl.Signature}
		seen[k] = true
		prev, ok := oldBy[k]
		switch {
		case !ok:
			d.Appeared = append(d.Appeared, cl)
		case prev.Count != cl.Count:
			d.Changed = append(d.Changed, ClusterChange{
				Impl: cl.Impl, Signature: cl.Signature, RootCause: cl.RootCause,
				OldCount: prev.Count, NewCount: cl.Count,
			})
		}
	}
	for _, cl := range old.Clusters {
		if !seen[ckey{cl.Impl, cl.Signature}] {
			d.Disappeared = append(d.Disappeared, cl)
		}
	}
	return d
}

// Render formats the delta; an empty delta renders as a single "no
// divergence delta" line.
func (d *Delta) Render() string {
	if d.Empty() {
		return fmt.Sprintf("no divergence delta (%d -> %d tests, clusters unchanged)\n",
			d.OldTotal, d.NewTotal)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "divergence delta: %d -> %d tests; +%d / -%d clusters, %d changed\n",
		d.OldTotal, d.NewTotal, len(d.Appeared), len(d.Disappeared), len(d.Changed))
	for _, cl := range d.Appeared {
		fmt.Fprintf(&b, "  + %-8s %-44s %4d tests  %s\n", cl.Impl, cl.Signature, cl.Count, cl.RootCause)
	}
	for _, cl := range d.Disappeared {
		fmt.Fprintf(&b, "  - %-8s %-44s %4d tests  %s\n", cl.Impl, cl.Signature, cl.Count, cl.RootCause)
	}
	for _, ch := range d.Changed {
		fmt.Fprintf(&b, "  ~ %-8s %-44s %4d -> %d tests  %s\n",
			ch.Impl, ch.Signature, ch.OldCount, ch.NewCount, ch.RootCause)
	}
	return b.String()
}
