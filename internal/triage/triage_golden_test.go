// Golden and determinism tests for the triage engine, driven by a real
// campaign (an external test package: campaign imports triage, so these
// tests cannot live inside it).
package triage_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pokeemu/internal/campaign"
	"pokeemu/internal/corpus"
	"pokeemu/internal/triage"
)

func openCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	crp, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return crp
}

var update = flag.Bool("update", false, "rewrite golden files")

// divergentCases runs one small campaign with a handler whose lo-fi
// implementation carries a seeded defect, and memoizes its triage cases:
// every test in this file shares the same deterministic input set.
var divergentCases = sync.OnceValues(func() ([]triage.CaseInfo, error) {
	res, err := campaign.Run(campaign.Config{
		MaxPathsPerInstr: 8,
		Handlers:         []string{"leave", "push_r"},
		Seed:             1,
		Workers:          4,
	})
	if err != nil {
		return nil, err
	}
	return res.TriageCases, nil
})

func mustCases(t *testing.T) []triage.CaseInfo {
	t.Helper()
	cases, err := divergentCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("seeded campaign produced no divergences")
	}
	return cases
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("output differs from %s (run with -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}

// TestTriageReportGolden pins the rendered triage report — clustering,
// baseline partition, and per-case minimization stats — byte for byte.
func TestTriageReportGolden(t *testing.T) {
	rep, err := triage.Run(mustCases(t), triage.Options{Minimize: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "report.golden"), []byte(rep.Render()))
}

// TestBaselineGolden pins the on-disk baseline format: the file a CI
// pipeline commits, so its bytes must be stable.
func TestBaselineGolden(t *testing.T) {
	rep, err := triage.Run(mustCases(t), triage.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.SuggestedBaseline().Encode()
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "baseline.golden"), data)
}

// TestReportDiffGolden pins the regression-diff rendering: a second triage
// run with one cluster's cases removed must show exactly that cluster as
// disappeared (or its count changed), nothing else.
func TestReportDiffGolden(t *testing.T) {
	cases := mustCases(t)
	full, err := triage.Run(cases, triage.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Drop every case of the first cluster's signature to fabricate a fix.
	gone := full.Clusters[0].Signature
	var remaining []triage.CaseInfo
	for _, c := range cases {
		if c.Signature != gone {
			remaining = append(remaining, c)
		}
	}
	reduced, err := triage.Run(remaining, triage.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	out.WriteString(triage.DiffReports(full, full).Render())
	out.WriteString(triage.DiffReports(full, reduced).Render())
	out.WriteString(triage.DiffReports(reduced, full).Render())
	compareGolden(t, filepath.Join("testdata", "reportdiff.golden"), out.Bytes())
}

// TestTriageWorkersDeterminism is the chaos-style scheduling test: the full
// minimizing triage run must render and encode byte-identically for
// Workers=1 and a heavily parallel pool. Run under -race via make race.
func TestTriageWorkersDeterminism(t *testing.T) {
	cases := mustCases(t)
	seq, err := triage.Run(cases, triage.Options{Minimize: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		par, err := triage.Run(cases, triage.Options{Minimize: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Render() != par.Render() {
			t.Errorf("Workers=1 vs %d: rendered reports differ", workers)
		}
		a, err := seq.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("Workers=1 vs %d: encoded reports differ", workers)
		}
	}
}

// TestTriageMinimizePreservesSignatures is the acceptance check on real
// campaign divergences: every case reproduces, shrinks (never grows), and
// its minimized program still produces the original signature.
func TestTriageMinimizePreservesSignatures(t *testing.T) {
	rep, err := triage.Run(mustCases(t), triage.Options{Minimize: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cases {
		m := c.Minimized
		if m == nil {
			t.Fatalf("%s: not minimized", c.TestID)
		}
		if !m.Reproduced {
			t.Errorf("%s: campaign divergence did not reproduce", c.TestID)
			continue
		}
		if m.Signature != c.Signature {
			t.Errorf("%s: signature drifted: %q -> %q", c.TestID, c.Signature, m.Signature)
		}
		if m.FinalBytes > m.OrigBytes {
			t.Errorf("%s: grew %d -> %d bytes", c.TestID, m.OrigBytes, m.FinalBytes)
		}
	}
}

// TestTriageBaselineRoundTrip is the cross-run regression gate in miniature:
// triage, record the suggested baseline, re-triage the same divergences
// against it, and require zero new.
func TestTriageBaselineRoundTrip(t *testing.T) {
	cases := mustCases(t)
	first, err := triage.Run(cases, triage.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first.New != first.Total || first.Known != 0 {
		t.Fatalf("baseline-free run not all-new: %d new of %d", first.New, first.Total)
	}
	second, err := triage.Run(cases, triage.Options{
		Workers: 4, Baseline: first.SuggestedBaseline(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.New != 0 || second.Known != second.Total || second.NewCluster != 0 {
		t.Errorf("baselined re-run still new: %d new, %d known of %d",
			second.New, second.Known, second.Total)
	}
}

// TestTriageCorpusCacheStability: a triage run with a warm minimization
// cache must render byte-identically to the cold run that filled it.
func TestTriageCorpusCacheStability(t *testing.T) {
	crp := openCorpus(t)
	cases := mustCases(t)
	cold, err := triage.Run(cases, triage.Options{Minimize: true, Workers: 4, Corpus: crp})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := triage.Run(cases, triage.Options{Minimize: true, Workers: 4, Corpus: crp})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Render() != warm.Render() {
		t.Error("warm (cached) triage run renders differently from the cold run")
	}
}
