// Package triage turns raw campaign divergences into actionable emulator
// bugs: a deterministic ddmin-style minimizer that shrinks a divergent test
// case while preserving its divergence signature, a versioned baseline file
// of suppressed (known) divergences so re-runs report only regressions, and
// report diffing that emits the delta between two triage reports. This is
// the automation step the paper performed by hand on representative tests
// (Section 6), and what follow-up systems (Tamarin's disequivalence
// localization, the ARM deviation-locating work) showed is required to run
// differential testing at scale.
package triage

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineVersion is the on-disk format version of baseline files. Load and
// Decode reject any other version: a baseline silently misread as empty
// would turn every known divergence into a "new" regression (or worse, the
// reverse), so the format is checked explicitly.
const BaselineVersion = 1

// BaselineEntry suppresses one divergence cluster: a lo-fi implementation
// plus the cluster signature, with the root cause and test count recorded
// when the entry was added (documentation for the human reading the file;
// matching uses only Impl and Signature).
type BaselineEntry struct {
	Impl      string `json:"impl"`      // the non-oracle side (e.g. "celer")
	Signature string `json:"signature"` // diff.Difference.Signature()
	RootCause string `json:"root_cause,omitempty"`
	Count     int    `json:"count,omitempty"` // tests in the cluster when recorded
}

// Baseline is a set of known divergences. Entries are kept sorted by
// (Impl, Signature) so Encode is byte-stable: the same set always
// serializes to the same file, and version-control diffs of a committed
// baseline stay minimal.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline returns an empty baseline at the current version.
func NewBaseline() *Baseline {
	return &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{}}
}

// Match reports whether the (impl, signature) pair is a known divergence.
// A nil baseline matches nothing: every divergence is new.
func (b *Baseline) Match(impl, signature string) bool {
	if b == nil {
		return false
	}
	i := sort.Search(len(b.Entries), func(i int) bool {
		e := b.Entries[i]
		return e.Impl > impl || (e.Impl == impl && e.Signature >= signature)
	})
	return i < len(b.Entries) && b.Entries[i].Impl == impl && b.Entries[i].Signature == signature
}

// Len returns the number of suppressed clusters (0 for nil).
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Entries)
}

// Update merges every cluster of the report into the baseline and returns
// how many entries were added. Existing entries keep their recorded root
// cause but refresh their count; the entry list stays sorted.
func (b *Baseline) Update(r *Report) int {
	added := 0
	for _, cl := range r.Clusters {
		if b.Match(cl.Impl, cl.Signature) {
			for i := range b.Entries {
				if b.Entries[i].Impl == cl.Impl && b.Entries[i].Signature == cl.Signature {
					b.Entries[i].Count = cl.Count
				}
			}
			continue
		}
		b.Entries = append(b.Entries, BaselineEntry{
			Impl: cl.Impl, Signature: cl.Signature, RootCause: cl.RootCause, Count: cl.Count,
		})
		added++
	}
	b.sortEntries()
	return added
}

func (b *Baseline) sortEntries() {
	sort.Slice(b.Entries, func(i, j int) bool {
		if b.Entries[i].Impl != b.Entries[j].Impl {
			return b.Entries[i].Impl < b.Entries[j].Impl
		}
		return b.Entries[i].Signature < b.Entries[j].Signature
	})
}

// Encode serializes the baseline: sorted entries, indented JSON, trailing
// newline. Byte-stable for a given entry set.
func (b *Baseline) Encode() ([]byte, error) {
	b.sortEntries()
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("triage: encoding baseline: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeBaseline parses and validates a baseline file.
func DecodeBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("triage: decoding baseline: %w", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("triage: baseline version %d, want %d", b.Version, BaselineVersion)
	}
	for _, e := range b.Entries {
		if e.Impl == "" || e.Signature == "" {
			return nil, fmt.Errorf("triage: baseline entry missing impl or signature: %+v", e)
		}
	}
	b.sortEntries()
	return &b, nil
}

// LoadBaseline reads a baseline from disk. A missing file is not an error:
// it returns (nil, nil), meaning "no baseline — everything is new", which is
// the natural first run of a CI gate before any baseline was recorded.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("triage: reading baseline: %w", err)
	}
	return DecodeBaseline(data)
}

// SaveBaseline writes the baseline to disk in the stable encoding.
func (b *Baseline) Save(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("triage: writing baseline: %w", err)
	}
	return nil
}
