package triage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestBaselineMatch(t *testing.T) {
	b := NewBaseline()
	b.Entries = []BaselineEntry{
		{Impl: "celer", Signature: "leave|esp"},
		{Impl: "celer", Signature: "mov|eax"},
		{Impl: "fidelis", Signature: "leave|esp"},
	}
	b.sortEntries()
	cases := []struct {
		impl, sig string
		want      bool
	}{
		{"celer", "leave|esp", true},
		{"celer", "mov|eax", true},
		{"fidelis", "leave|esp", true},
		// Signature alone must not match: the pair is the key.
		{"fidelis", "mov|eax", false},
		{"hardware", "leave|esp", false},
		{"celer", "leave|ebp", false},
		{"", "", false},
	}
	for _, c := range cases {
		if got := b.Match(c.impl, c.sig); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.impl, c.sig, got, c.want)
		}
	}
}

func TestBaselineNilMatchesNothing(t *testing.T) {
	var b *Baseline
	if b.Match("celer", "leave|esp") {
		t.Error("nil baseline matched")
	}
	if b.Len() != 0 {
		t.Errorf("nil baseline Len = %d", b.Len())
	}
}

func TestBaselineUpdate(t *testing.T) {
	rep := &Report{Version: ReportVersion, Clusters: []ClusterSummary{
		{Impl: "celer", Signature: "leave|esp", RootCause: "leave: non-atomic ESP update", Count: 3},
		{Impl: "celer", Signature: "mov|eax", RootCause: "other: mov|eax", Count: 1},
	}}
	b := NewBaseline()
	if added := b.Update(rep); added != 2 {
		t.Fatalf("first update added %d, want 2", added)
	}
	// Re-updating with a grown cluster refreshes the count without
	// duplicating the entry.
	rep.Clusters[0].Count = 5
	if added := b.Update(rep); added != 0 {
		t.Fatalf("second update added %d, want 0", added)
	}
	if b.Len() != 2 {
		t.Fatalf("entries = %d, want 2", b.Len())
	}
	if b.Entries[0].Count != 5 {
		t.Errorf("count not refreshed: %+v", b.Entries[0])
	}
}

func TestBaselineEncodeStable(t *testing.T) {
	mk := func(order []BaselineEntry) []byte {
		b := NewBaseline()
		b.Entries = append(b.Entries, order...)
		data, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	e1 := BaselineEntry{Impl: "celer", Signature: "a|x", Count: 1}
	e2 := BaselineEntry{Impl: "celer", Signature: "b|y", Count: 2}
	e3 := BaselineEntry{Impl: "fidelis", Signature: "a|x", Count: 3}
	fwd := mk([]BaselineEntry{e1, e2, e3})
	rev := mk([]BaselineEntry{e3, e2, e1})
	if !bytes.Equal(fwd, rev) {
		t.Errorf("encoding depends on insertion order:\n%s\nvs\n%s", fwd, rev)
	}
}

func TestBaselineDecodeRejects(t *testing.T) {
	if _, err := DecodeBaseline([]byte(`{"version":99,"entries":[]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := DecodeBaseline([]byte(`{"version":1,"entries":[{"impl":"","signature":"x"}]}`)); err == nil {
		t.Error("entry without impl accepted")
	}
	if _, err := DecodeBaseline([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBaselineSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	// Missing file: no baseline, not an error.
	bl, err := LoadBaseline(path)
	if err != nil || bl != nil {
		t.Fatalf("missing file: %v, %v; want nil, nil", bl, err)
	}

	b := NewBaseline()
	b.Entries = []BaselineEntry{{Impl: "celer", Signature: "leave|esp", Count: 2}}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Match("celer", "leave|esp") {
		t.Errorf("round trip lost the entry: %+v", got)
	}
}
