package triage

import (
	"bytes"
	"testing"

	"pokeemu/internal/x86"
)

func TestSplitAtoms(t *testing.T) {
	init := append(x86.AsmMovRegImm32(x86.EAX, 0x2a), x86.AsmMovRegImm32(x86.EBX, 7)...)
	atoms := splitAtoms(init)
	if len(atoms) != 2 {
		t.Fatalf("atoms = %d, want 2: %x", len(atoms), atoms)
	}
	if !bytes.Equal(bytes.Join(atoms, nil), init) {
		t.Error("atoms do not reassemble the input")
	}
}

func TestSplitAtomsOpaqueResidue(t *testing.T) {
	// A valid instruction followed by an undecodable byte soup: the residue
	// must come back as one opaque atom so rebuilds are lossless.
	init := append(x86.AsmMovRegImm32(x86.EAX, 1), 0x0f, 0xff, 0xff)
	atoms := splitAtoms(init)
	if !bytes.Equal(bytes.Join(atoms, nil), init) {
		t.Fatalf("lossy split: %x -> %x", init, atoms)
	}
}

func TestSplitCaseStripsHlt(t *testing.T) {
	initBytes := x86.AsmMovRegImm32(x86.EAX, 0x2a)
	instr := []byte{0x01, 0xd8} // add eax, ebx
	prog := append(append(append([]byte(nil), initBytes...), instr...), x86.AsmHlt()...)
	c := CaseInfo{Prog: prog, TestOffset: len(initBytes)}
	atoms, gotInstr := splitCase(c)
	if len(atoms) != 1 || !bytes.Equal(gotInstr, instr) {
		t.Errorf("split = %x / %x, want 1 atom / %x", atoms, gotInstr, instr)
	}
	if !bytes.Equal(buildProg(atoms, gotInstr), prog) {
		t.Error("rebuild does not reproduce the program")
	}
}

func TestSplitCaseClampsBadOffset(t *testing.T) {
	prog := append(x86.AsmMovRegImm32(x86.EAX, 1), x86.AsmHlt()...)
	for _, off := range []int{-1, len(prog) + 1} {
		atoms, instr := splitCase(CaseInfo{Prog: prog, TestOffset: off})
		if !bytes.Equal(buildProg(atoms, instr), prog) {
			t.Errorf("offset %d: rebuild lost bytes", off)
		}
	}
}

func TestZeroImm(t *testing.T) {
	atom := x86.AsmMovRegImm32(x86.EAX, 0x11223344)
	z, changed := zeroImm(atom)
	if changed != 4 {
		t.Fatalf("changed = %d, want 4", changed)
	}
	want := x86.AsmMovRegImm32(x86.EAX, 0)
	if !bytes.Equal(z, want) {
		t.Errorf("zeroed = %x, want %x", z, want)
	}
	// Already-zero immediate: no candidate.
	if z, changed := zeroImm(want); z != nil || changed != 0 {
		t.Errorf("zero imm produced a candidate: %x, %d", z, changed)
	}
	// No immediate at all.
	if z, changed := zeroImm(x86.AsmHlt()); z != nil || changed != 0 {
		t.Errorf("hlt produced a candidate: %x, %d", z, changed)
	}
}

func TestOracleForUnknownImpl(t *testing.T) {
	if _, err := OracleFor(CaseInfo{ImplA: "hardware", ImplB: "qemu"}, 0); err == nil {
		t.Error("unknown implementation accepted")
	}
	if _, err := OracleFor(CaseInfo{ImplA: "nope", ImplB: "celer"}, 0); err == nil {
		t.Error("unknown implementation accepted")
	}
}

// TestMinimizeNonReproducing feeds a program that terminates identically on
// both implementations: the minimizer must return it unshrunk, flagged
// Reproduced=false, after exactly one oracle run.
func TestMinimizeNonReproducing(t *testing.T) {
	initBytes := x86.AsmMovRegImm32(x86.EAX, 0x2a)
	prog := append(append([]byte(nil), initBytes...), x86.AsmHlt()...)
	c := CaseInfo{
		TestID: "t#0", Handler: "mov_r_imm", Mnemonic: "mov",
		ImplA: "hardware", ImplB: "celer",
		Prog: prog, TestOffset: len(initBytes),
	}
	m, err := Minimize(c, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reproduced {
		t.Fatalf("identical-state program reported as divergent: %+v", m)
	}
	if m.OracleRuns != 1 {
		t.Errorf("oracle runs = %d, want 1", m.OracleRuns)
	}
	if !bytes.Equal(m.Prog, prog) {
		t.Errorf("non-reproducing case was altered: %x -> %x", prog, m.Prog)
	}
}
