package triage

import (
	"bytes"
	"testing"

	"pokeemu/internal/x86"
)

// FuzzTriageMinimize throws arbitrary programs at the minimizer and asserts
// its two invariants on whatever comes back: the result never grows past the
// canonicalized original, and a reproduced result's final program still
// produces exactly the original divergence signature under an independent
// oracle. Handlers are varied so different undefined-behavior filters are
// exercised; budgets are small to keep iterations fast.
func FuzzTriageMinimize(f *testing.F) {
	// Seeds: a known-divergent shape (celer's leave defect), a clean
	// program, and raw byte soup.
	leave := append(append(
		x86.AsmMovRegImm32(x86.EBP, 0x00300000), x86.AsmMovRegImm32(x86.ESP, 0x002ffff0)...),
		0xc9) // leave
	f.Add(leave, len(leave)-1, uint8(0))
	clean := append(x86.AsmMovRegImm32(x86.EAX, 0x2a), 0x01, 0xd8)
	f.Add(clean, 5, uint8(1))
	f.Add([]byte{0xc9, 0x9c, 0x60, 0xf4, 0xff, 0x00}, 2, uint8(2))

	handlers := []string{"leave", "push_r", "add_rmv_rv", "shl_rmv_imm8"}
	const maxSteps, budget = 128, 48

	f.Fuzz(func(t *testing.T, prog []byte, off int, hsel uint8) {
		if len(prog) == 0 || len(prog) > 64 {
			return
		}
		c := CaseInfo{
			TestID:   "fuzz#0",
			Handler:  handlers[int(hsel)%len(handlers)],
			Mnemonic: "fuzz",
			ImplA:    "hardware", ImplB: "celer",
			Prog:       append([]byte(nil), prog...),
			TestOffset: off, // Minimize clamps out-of-range offsets itself
		}
		m, err := Minimize(c, maxSteps, budget)
		if err != nil {
			t.Fatalf("minimize errored on %x: %v", prog, err)
		}
		if m.OracleRuns > budget {
			t.Fatalf("budget exceeded: %d > %d", m.OracleRuns, budget)
		}
		if m.FinalBytes > m.OrigBytes || len(m.Prog) != m.FinalBytes {
			t.Fatalf("case grew: %d -> %d bytes (prog %d)",
				m.OrigBytes, m.FinalBytes, len(m.Prog))
		}
		if m.FinalAtoms > m.OrigAtoms {
			t.Fatalf("atoms grew: %d -> %d", m.OrigAtoms, m.FinalAtoms)
		}
		if !bytes.HasSuffix(m.Prog, x86.AsmHlt()) {
			t.Fatalf("minimized program lost its hlt: %x", m.Prog)
		}
		if !m.Reproduced {
			return
		}
		if m.Signature == "" {
			t.Fatal("reproduced case has an empty signature")
		}
		// Independent check: a fresh oracle on the final program must see
		// exactly the original divergence — every accepted minimization step
		// preserved the signature.
		oracle, err := OracleFor(c, maxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if got := oracle(m.Prog); got != m.Signature {
			t.Fatalf("signature not preserved:\noriginal %q\nfinal    %q\nprog %x",
				m.Signature, got, m.Prog)
		}
	})
}
