package triage

import (
	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/machine"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
)

// Version identifies the minimizer algorithm and the Minimized encoding; it
// is part of every cached triage entry's corpus key, so an algorithm change
// re-minimizes instead of replaying stale results.
const Version = 1

// DefaultBudget bounds oracle runs per minimized case. Every candidate the
// minimizer tries costs one oracle run (two emulator executions plus a state
// diff); the budget makes the per-case cost deterministic and proportional,
// never quadratic blowup on a pathological case.
const DefaultBudget = 256

// CaseInfo is one divergent test as the campaign's compare stage saw it:
// identity, the implementation pair, the divergence signature and root
// cause, and the runnable program (initializer gadgets, then the test
// instruction at TestOffset, then hlt). It is the minimizer's input and the
// unit the triage report is built from.
type CaseInfo struct {
	TestID   string `json:"test_id"`
	Handler  string `json:"handler"`
	Mnemonic string `json:"mnemonic"`
	ImplA    string `json:"impl_a"` // oracle side (e.g. "hardware")
	ImplB    string `json:"impl_b"` // emulator under test (e.g. "celer")

	Signature string `json:"signature"`
	RootCause string `json:"root_cause"`

	Prog       []byte `json:"prog"`
	TestOffset int    `json:"test_offset"` // offset of the test instruction in Prog
}

// Minimized is the result of shrinking one case. The final program is
// Prog (kept initializer atoms + possibly truncated test instruction + hlt)
// and reproduces exactly the original Signature when Reproduced is true.
type Minimized struct {
	Reproduced bool   `json:"reproduced"`
	Signature  string `json:"signature"`
	Prog       []byte `json:"prog"`
	TestOffset int    `json:"test_offset"`

	OrigBytes  int `json:"orig_bytes"`
	FinalBytes int `json:"final_bytes"`
	OrigAtoms  int `json:"orig_atoms"` // initializer instructions before minimization
	FinalAtoms int `json:"final_atoms"`

	DroppedAtoms   int `json:"dropped_atoms"`   // initializer instructions removed
	ZeroedBytes    int `json:"zeroed_bytes"`    // immediate bytes zeroed in kept atoms
	TruncatedBytes int `json:"truncated_bytes"` // bytes cut off the test instruction
	OracleRuns     int `json:"oracle_runs"`
}

// Oracle executes a candidate program on the case's implementation pair and
// returns the divergence signature, or "" when the two final states agree.
type Oracle func(prog []byte) string

// OracleFor builds the differential oracle for a case: both implementations
// boot the shared baseline image through the fixed baseline initializer,
// run the candidate program under the step budget, and the final states are
// compared under the case's undefined-behavior filter — exactly the
// campaign's compare stage for one test. Factories are created fresh per
// oracle, so concurrent minimizations share no mutable state.
func OracleFor(c CaseInfo, maxSteps int) (Oracle, error) {
	fa, ok := harness.ByName(c.ImplA)
	if !ok {
		return nil, &UnknownImplError{Name: c.ImplA}
	}
	fb, ok := harness.ByName(c.ImplB)
	if !ok {
		return nil, &UnknownImplError{Name: c.ImplB}
	}
	if maxSteps <= 0 {
		maxSteps = harness.DefaultMaxSteps
	}
	image := machine.BaselineImage()
	boot := testgen.BaselineInit()
	budget := harness.Budget{MaxSteps: maxSteps}
	filter := diff.UndefFilterFor(c.Handler)
	d := diff.Difference{
		TestID: c.TestID, Handler: c.Handler, Mnemonic: c.Mnemonic,
		ImplA: c.ImplA, ImplB: c.ImplB,
	}
	return func(prog []byte) string {
		ra := harness.RunBootBudget(fa, image, boot, prog, budget)
		rb := harness.RunBootBudget(fb, image, boot, prog, budget)
		ds := diff.Compare(ra.Snapshot, rb.Snapshot, filter)
		if len(ds) == 0 {
			return ""
		}
		d := d // copy; Signature reads Fields
		d.Fields = ds
		return d.Signature()
	}, nil
}

// UnknownImplError reports a case naming an implementation the harness does
// not provide.
type UnknownImplError struct{ Name string }

func (e *UnknownImplError) Error() string {
	return "triage: unknown implementation " + e.Name
}

// splitAtoms decodes the initializer prefix into single-instruction atoms,
// the minimizer's unit of removal. Undecodable residue (possible on
// fuzz-constructed cases, never on testgen output) is kept as one opaque
// atom so rebuilding always reproduces the original bytes.
func splitAtoms(init []byte) [][]byte {
	var atoms [][]byte
	for len(init) > 0 {
		inst, err := x86.Decode(init)
		if err != nil || inst.Len <= 0 || inst.Len > len(init) {
			atoms = append(atoms, init)
			break
		}
		atoms = append(atoms, init[:inst.Len])
		init = init[inst.Len:]
	}
	return atoms
}

// splitCase cuts a case's program into initializer atoms, test-instruction
// bytes, and the terminating hlt (re-appended on every rebuild).
func splitCase(c CaseInfo) (atoms [][]byte, instr []byte) {
	off := c.TestOffset
	if off < 0 || off > len(c.Prog) {
		off = 0
	}
	atoms = splitAtoms(c.Prog[:off])
	instr = c.Prog[off:]
	hlt := x86.AsmHlt()
	if len(instr) >= len(hlt) && instr[len(instr)-1] == hlt[0] {
		instr = instr[:len(instr)-len(hlt)]
	}
	return atoms, instr
}

// buildProg reassembles a candidate program from atoms and instruction
// bytes, terminated by hlt.
func buildProg(atoms [][]byte, instr []byte) []byte {
	var out []byte
	for _, a := range atoms {
		out = append(out, a...)
	}
	out = append(out, instr...)
	return append(out, x86.AsmHlt()...)
}

// zeroImm returns a copy of the atom with its trailing immediate bytes
// zeroed and the number of bytes changed; (nil, 0) when the atom has no
// immediate or already carries a zero one. The variant is only a candidate:
// the oracle decides whether the zeroed state value still reproduces the
// divergence, so mis-zeroing an exotic encoding is harmless.
func zeroImm(atom []byte) ([]byte, int) {
	inst, err := x86.Decode(atom)
	if err != nil || inst.Len != len(atom) || inst.ImmSize == 0 {
		return nil, 0
	}
	out := append([]byte(nil), atom...)
	changed := 0
	for i := len(out) - inst.ImmSize; i < len(out); i++ {
		if out[i] != 0 {
			out[i] = 0
			changed++
		}
	}
	if changed == 0 {
		return nil, 0
	}
	return out, changed
}

// Minimize shrinks one divergent case with a fixed, fully deterministic
// schedule — the result depends only on the case, the step budget, and the
// oracle budget, never on scheduling or worker counts:
//
//  1. reproduce the divergence and record its signature;
//  2. ddmin over the initializer atoms (drop chunks at doubling
//     granularity, keeping any removal that preserves the signature);
//  3. zero the immediate of each surviving atom (the test-state fields the
//     divergence does not actually depend on);
//  4. truncate the test-instruction bytes to the shortest prefix that still
//     reproduces the signature.
//
// Every accepted step re-ran the oracle and preserved the signature, so the
// returned program — never larger than the input — diverges exactly the way
// the original did. A case whose divergence does not reproduce (or an
// exhausted budget before the first check) is returned unshrunk with
// Reproduced=false.
func Minimize(c CaseInfo, maxSteps, budget int) (*Minimized, error) {
	oracle, err := OracleFor(c, maxSteps)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	atoms, instr := splitCase(c)
	// The canonical original is the rebuilt program (atoms + instr + hlt):
	// identical to c.Prog for testgen output, and normalized (hlt appended)
	// for hand- or fuzz-constructed cases, so FinalBytes <= OrigBytes holds
	// unconditionally.
	orig := buildProg(atoms, instr)
	m := &Minimized{
		Prog:      orig,
		OrigBytes: len(orig), FinalBytes: len(orig),
		OrigAtoms: len(atoms), FinalAtoms: len(atoms),
		TestOffset: len(orig) - len(instr) - len(x86.AsmHlt()),
	}

	m.OracleRuns++
	sig := oracle(orig)
	if sig == "" {
		return m, nil
	}
	m.Reproduced = true
	m.Signature = sig

	// check runs one budgeted oracle attempt on a candidate.
	check := func(as [][]byte, in []byte) bool {
		if m.OracleRuns >= budget {
			return false
		}
		m.OracleRuns++
		return oracle(buildProg(as, in)) == sig
	}

	// Phase 2: ddmin over initializer atoms.
	n := 2
	for len(atoms) > 0 {
		if len(atoms) == 1 {
			if check(nil, instr) {
				atoms = nil
			}
			break
		}
		if n > len(atoms) {
			n = len(atoms)
		}
		chunk := (len(atoms) + n - 1) / n
		reduced := false
		for start := 0; start < len(atoms); start += chunk {
			end := start + chunk
			if end > len(atoms) {
				end = len(atoms)
			}
			cand := make([][]byte, 0, len(atoms)-(end-start))
			cand = append(cand, atoms[:start]...)
			cand = append(cand, atoms[end:]...)
			if check(cand, instr) {
				atoms = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(atoms) {
				break
			}
			n *= 2
		}
	}
	m.DroppedAtoms = m.OrigAtoms - len(atoms)

	// Phase 3: zero surviving state-initializer immediates.
	for i := range atoms {
		z, changed := zeroImm(atoms[i])
		if changed == 0 {
			continue
		}
		cand := append([][]byte(nil), atoms...)
		cand[i] = z
		if check(cand, instr) {
			atoms[i] = z
			m.ZeroedBytes += changed
		}
	}

	// Phase 4: truncate the test instruction to its shortest reproducing
	// prefix.
	for l := 1; l < len(instr); l++ {
		if check(atoms, instr[:l]) {
			m.TruncatedBytes = len(instr) - l
			instr = instr[:l]
			break
		}
	}

	m.Prog = buildProg(atoms, instr)
	m.FinalBytes = len(m.Prog)
	m.FinalAtoms = len(atoms)
	m.TestOffset = len(m.Prog) - len(instr) - len(x86.AsmHlt())
	return m, nil
}
