package lento

import (
	"math/bits"

	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// maskW is the all-ones mask for a w-bit value.
func maskW(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<w - 1
}

// signExt sign-extends the low w bits of v.
func signExt(v uint64, w uint8) int64 {
	shift := 64 - w
	return int64(v<<shift) >> shift
}

// shlW/shrW shift within a w-bit lane; counts at or past the width yield 0.
func shlW(v uint64, n, w uint8) uint64 {
	if n >= w {
		return 0
	}
	return v << n & maskW(w)
}

func shrW(v uint64, n, w uint8) uint64 {
	if n >= w {
		return 0
	}
	return v & maskW(w) >> n
}

// sarW arithmetic-shifts within a w-bit lane; counts at or past the width
// saturate to w-1 (sign fill).
func sarW(v uint64, n, w uint8) uint64 {
	if n >= w {
		n = w - 1
	}
	return uint64(signExt(v, w)>>n) & maskW(w)
}

// ---- Register and flag access ----

func (x *exec) gprRead(idx, w uint8) uint64 {
	m := x.m
	switch w {
	case 32:
		return uint64(m.GPR[idx])
	case 16:
		return uint64(m.GPR[idx] & 0xffff)
	case 8:
		if idx < 4 {
			return uint64(m.GPR[idx] & 0xff)
		}
		return uint64(m.GPR[idx&3] >> 8 & 0xff)
	}
	panic("lento: bad gpr width")
}

func (x *exec) gprWrite(idx, w uint8, v uint64) {
	m := x.m
	switch w {
	case 32:
		m.GPR[idx] = uint32(v)
	case 16:
		m.GPR[idx] = m.GPR[idx]&0xffff0000 | uint32(v&0xffff)
	case 8:
		if idx < 4 {
			m.GPR[idx] = m.GPR[idx]&^uint32(0xff) | uint32(v&0xff)
		} else {
			r := idx & 3
			m.GPR[r] = m.GPR[r]&^uint32(0xff00) | uint32(v&0xff)<<8
		}
	default:
		panic("lento: bad gpr width")
	}
}

func (x *exec) flag(bit uint8) uint64 { return uint64(x.m.EFLAGS >> bit & 1) }

func (x *exec) setFlag(bit uint8, v uint64) {
	if v&1 == 1 {
		x.m.EFLAGS |= 1 << bit
	} else {
		x.m.EFLAGS &^= 1 << bit
	}
}

func (x *exec) setFlagB(bit uint8, v bool) {
	if v {
		x.m.EFLAGS |= 1 << bit
	} else {
		x.m.EFLAGS &^= 1 << bit
	}
}

// parityBit is PF: set when the low byte has even parity.
func parityBit(v uint64) uint64 {
	return uint64(1) ^ uint64(bits.OnesCount8(uint8(v))&1)
}

// szp sets SF/ZF/PF from a w-bit result.
func (x *exec) szp(r uint64, w uint8) {
	x.setFlag(x86.FlagSF, r>>(w-1)&1)
	x.setFlagB(x86.FlagZF, r&maskW(w) == 0)
	x.setFlag(x86.FlagPF, parityBit(r))
}

// addFlags sets CF/OF/AF/SF/ZF/PF for r = a + b + cin at width w.
func (x *exec) addFlags(a, b, cin, r uint64, w uint8) {
	x.setFlag(x86.FlagCF, (a+b+cin)>>w&1)
	x.setFlag(x86.FlagOF, ^(a^b)&(a^r)>>(w-1)&1)
	x.setFlag(x86.FlagAF, (a^b^r)>>4&1)
	x.szp(r, w)
}

// subFlags sets CF/OF/AF/SF/ZF/PF for r = a - b - cin at width w.
func (x *exec) subFlags(a, b, cin, r uint64, w uint8) {
	x.setFlag(x86.FlagCF, (a-b-cin)>>w&1)
	x.setFlag(x86.FlagOF, (a^b)&(a^r)>>(w-1)&1)
	x.setFlag(x86.FlagAF, (a^b^r)>>4&1)
	x.szp(r, w)
}

// logicFlags sets the status flags after AND/OR/XOR/TEST: CF=OF=0, AF
// forced to 0 (the Bochs convention), SF/ZF/PF from the result.
func (x *exec) logicFlags(r uint64, w uint8) {
	x.setFlag(x86.FlagCF, 0)
	x.setFlag(x86.FlagOF, 0)
	x.setFlag(x86.FlagAF, 0)
	x.szp(r, w)
}

// incDecFlags is add/sub flags with b == 1 and CF preserved.
func (x *exec) incDecFlags(a, r uint64, w uint8, dec bool) {
	if dec {
		x.setFlag(x86.FlagOF, (a^1)&(a^r)>>(w-1)&1)
	} else {
		x.setFlag(x86.FlagOF, ^(a^1)&(a^r)>>(w-1)&1)
	}
	x.setFlag(x86.FlagAF, (a^1^r)>>4&1)
	x.szp(r, w)
}

// condValue evaluates condition code cc (the low nibble of a Jcc opcode).
func (x *exec) condValue(cc uint8) bool {
	cf := x.flag(x86.FlagCF) == 1
	zf := x.flag(x86.FlagZF) == 1
	sf := x.flag(x86.FlagSF) == 1
	of := x.flag(x86.FlagOF) == 1
	pf := x.flag(x86.FlagPF) == 1
	var v bool
	switch cc >> 1 {
	case 0:
		v = of
	case 1:
		v = cf
	case 2:
		v = zf
	case 3:
		v = cf || zf
	case 4:
		v = sf
	case 5:
		v = pf
	case 6:
		v = sf != of
	case 7:
		v = zf || sf != of
	}
	if cc&1 == 1 {
		v = !v
	}
	return v
}

// packEFLAGS assembles the architectural EFLAGS image from the live bits.
func (x *exec) packEFLAGS() uint32 {
	return x86.PackEFLAGS(func(bit uint8) uint32 { return x.m.EFLAGS >> bit & 1 })
}

// unpackEFLAGS writes the writable bits of an EFLAGS image back, bit by
// bit. IF and IOPL move only for popf/iret (not sahf); AC and ID exist
// only at 32-bit operand size.
func (x *exec) unpackEFLAGS(v uint64, includeIFIOPL bool) {
	writable := []uint8{
		x86.FlagCF, x86.FlagPF, x86.FlagAF, x86.FlagZF, x86.FlagSF,
		x86.FlagTF, x86.FlagDF, x86.FlagOF, x86.FlagNT,
	}
	if x.osz == 32 {
		writable = append(writable, x86.FlagAC, x86.FlagID)
	}
	if includeIFIOPL {
		writable = append(writable, x86.FlagIF, 12, 13)
	}
	for _, bit := range writable {
		x.setFlag(bit, v>>bit&1)
	}
}

// ---- Memory access ----

// memRef is a resolved guest-memory operand: segment-checked, page-walked
// (both pages when the access crosses a 4 KiB boundary), ready for
// byte-by-byte load/store.
type memRef struct {
	size   uint8
	lin    uint32
	physA  uint32
	frameB uint32
	cross  bool
}

func faultOf(exc *machine.ExceptionInfo) *fault {
	return &fault{vec: exc.Vector, err: exc.ErrCode, hasErr: exc.HasErr}
}

// segFault is the segmentation-violation exception: #SS for explicitly
// stack-semantic accesses, #GP otherwise, error code 0.
func segFault(stackSem bool) *fault {
	if stackSem {
		return &fault{vec: x86.ExcSS, hasErr: true}
	}
	return &fault{vec: x86.ExcGP, hasErr: true}
}

// segCheck applies the segment-level protection checks and returns the
// linear address. Checks run in the architectural order: present, offset
// wrap, type/write permission, then the limit (expand-up or expand-down).
func (x *exec) segCheck(seg x86.SegReg, off uint32, size uint8, write, stackSem bool) (uint32, *fault) {
	s := &x.m.Seg[seg]
	if s.Attr&x86.AttrP == 0 {
		return 0, segFault(stackSem)
	}
	last := off + uint32(size) - 1
	if last < off { // offset range wraps the 4 GiB space
		return 0, segFault(stackSem)
	}
	if s.Attr&x86.AttrCode != 0 {
		// Code segment: never writable; readable only with the R bit.
		if write || s.Attr&x86.AttrWritable == 0 || last > s.Limit {
			return 0, segFault(stackSem)
		}
	} else {
		if write && s.Attr&x86.AttrWritable == 0 {
			return 0, segFault(stackSem)
		}
		if s.Attr&x86.AttrExpand == 0 {
			if last > s.Limit {
				return 0, segFault(stackSem)
			}
		} else {
			// Expand-down: valid offsets are (limit, upper].
			if off <= s.Limit {
				return 0, segFault(stackSem)
			}
			upper := uint32(0xffff)
			if s.Attr&x86.AttrDB != 0 {
				upper = 0xffffffff
			}
			if last > upper {
				return 0, segFault(stackSem)
			}
		}
	}
	return s.Base + off, nil
}

// walkRef page-walks a linear range into a memRef. The walk itself lives on
// the machine (shared with the harness's snapshot tooling); it sets CR2 and
// the A/D bits exactly as the reference semantics do.
func (x *exec) walkRef(lin uint32, size uint8, write bool) (*memRef, *fault) {
	physA, exc := x.m.Translate(lin, write)
	if exc != nil {
		return nil, faultOf(exc)
	}
	r := &memRef{size: size, lin: lin, physA: physA}
	if size > 1 && lin&0xfff+uint32(size-1) > 0xfff {
		physB, exc := x.m.Translate(lin+uint32(size-1), write)
		if exc != nil {
			return nil, faultOf(exc)
		}
		r.cross = true
		r.frameB = physB &^ 0xfff
	}
	return r, nil
}

// translate is segCheck + page walk for a seg:off access.
func (x *exec) translate(seg x86.SegReg, off uint32, size uint8, write, stackSem bool) (*memRef, *fault) {
	lin, f := x.segCheck(seg, off, size, write, stackSem)
	if f != nil {
		return nil, f
	}
	return x.walkRef(lin, size, write)
}

// translateLin page-walks a paging-only access (descriptor-table reads and
// writes bypass segmentation).
func (x *exec) translateLin(lin uint32, size uint8, write bool) (*memRef, *fault) {
	return x.walkRef(lin, size, write)
}

// byteAddr gives the physical address of byte i of the reference,
// accounting for a page crossing.
func (x *exec) byteAddr(r *memRef, i uint8) uint32 {
	if i == 0 {
		return r.physA
	}
	if r.cross && r.lin&0xfff+uint32(i) > 0xfff {
		return r.frameB | (r.lin+uint32(i))&0xfff
	}
	return r.physA + uint32(i)
}

func (x *exec) memLoad(r *memRef) uint64 {
	var v uint64
	for i := uint8(0); i < r.size; i++ {
		v |= uint64(x.m.Mem.Read8(x.byteAddr(r, i))) << (8 * i)
	}
	return v
}

func (x *exec) memStore(r *memRef, v uint64) {
	for i := uint8(0); i < r.size; i++ {
		x.m.Mem.Write8(x.byteAddr(r, i), byte(v>>(8*i)))
	}
}

func (x *exec) readMem(seg x86.SegReg, off uint32, size uint8, stackSem bool) (uint64, *fault) {
	r, f := x.translate(seg, off, size, false, stackSem)
	if f != nil {
		return 0, f
	}
	return x.memLoad(r), nil
}

func (x *exec) writeMem(seg x86.SegReg, off uint32, size uint8, stackSem bool, v uint64) *fault {
	r, f := x.translate(seg, off, size, true, stackSem)
	if f != nil {
		return f
	}
	x.memStore(r, v)
	return nil
}

func (x *exec) readLin(lin uint32, size uint8) (uint64, *fault) {
	r, f := x.translateLin(lin, size, false)
	if f != nil {
		return 0, f
	}
	return x.memLoad(r), nil
}

// ---- Stack ----

// push decrements ESP by the operand size and stores; ESP moves only after
// the store succeeds, so a faulting push leaves ESP untouched.
func (x *exec) push(v uint64) *fault {
	size := uint32(x.osz / 8)
	newESP := x.m.GPR[4] - size
	if f := x.writeMem(x86.SS, newESP, uint8(size), true, v); f != nil {
		return f
	}
	x.m.GPR[4] = newESP
	return nil
}

// push32 is a fixed 32-bit push (exception delivery).
func (x *exec) push32(v uint64) *fault {
	newESP := x.m.GPR[4] - 4
	if f := x.writeMem(x86.SS, newESP, 4, true, v); f != nil {
		return f
	}
	x.m.GPR[4] = newESP
	return nil
}

// pop reads at ESP and then increments it.
func (x *exec) pop() (uint64, *fault) {
	size := uint32(x.osz / 8)
	v, f := x.readMem(x86.SS, x.m.GPR[4], uint8(size), true)
	if f != nil {
		return 0, f
	}
	x.m.GPR[4] += size
	return v, nil
}

// stackRead reads at ESP+delta without moving ESP.
func (x *exec) stackRead(delta uint32, size uint8) (uint64, *fault) {
	return x.readMem(x86.SS, x.m.GPR[4]+delta, size, true)
}

// ---- Effective address and operand resolution ----

// effAddr computes the (segment, offset) of the instruction's memory
// operand from ModRM/SIB/displacement. An explicit segment-override prefix
// wins; otherwise SS for EBP/ESP-based forms, DS for everything else.
func (x *exec) effAddr() (x86.SegReg, uint32) {
	in := x.inst
	seg := x86.DS
	var off uint32
	switch {
	case in.HasSIB:
		scale := in.SIB >> 6
		index := in.SIB >> 3 & 7
		base := in.SIB & 7
		if base == 5 && in.Mod() == 0 {
			off = in.Disp
		} else {
			off = x.m.GPR[base] + in.Disp
			if base == 4 || base == 5 {
				seg = x86.SS
			}
		}
		if index != 4 {
			off += x.m.GPR[index] << scale
		}
	case in.Mod() == 0 && in.RM() == 5:
		off = in.Disp
	default:
		off = x.m.GPR[in.RM()] + in.Disp
		if in.RM() == 5 {
			seg = x86.SS
		}
	}
	if in.SegOverride >= 0 {
		seg = x86.SegReg(in.SegOverride)
	}
	return seg, off
}

// rmOp is a resolved ModRM r/m operand: either a register or a translated
// memory reference.
type rmOp struct {
	isReg bool
	reg   uint8
	mem   *memRef
	width uint8
}

// resolveRM resolves the r/m operand at width w (bits). Memory operands
// are segment-checked and page-walked up front — before any reads — so
// write-translations set A/D bits even if the instruction later commits
// nothing (the architectural read-modify-write contract).
func (x *exec) resolveRM(w uint8, write bool) (rmOp, *fault) {
	in := x.inst
	if in.Mod() == 3 {
		return rmOp{isReg: true, reg: in.RM(), width: w}, nil
	}
	seg, off := x.effAddr()
	m, f := x.translate(seg, off, w/8, write, false)
	if f != nil {
		return rmOp{}, f
	}
	return rmOp{mem: m, width: w}, nil
}

func (x *exec) rmRead(o rmOp) uint64 {
	if o.isReg {
		return x.gprRead(o.reg, o.width)
	}
	return x.memLoad(o.mem)
}

func (x *exec) rmWrite(o rmOp, v uint64) {
	if o.isReg {
		x.gprWrite(o.reg, o.width, v)
		return
	}
	x.memStore(o.mem, v)
}

// opRef is a resolved operand of any form: r/m, ModRM reg field, a fixed
// register, or an immediate.
type opRef struct {
	rm    *rmOp
	reg   int8 // ModRM reg field when >= 0
	fixed int8 // fixed GPR index when >= 0
	imm   bool
	width uint8
}

// resolveForm resolves one operand-form token from a handler name.
func (x *exec) resolveForm(tok string, write bool) (opRef, *fault) {
	none := int8(-1)
	switch tok {
	case "rm8":
		o, f := x.resolveRM(8, write)
		if f != nil {
			return opRef{}, f
		}
		return opRef{rm: &o, reg: none, fixed: none, width: 8}, nil
	case "rmv":
		o, f := x.resolveRM(x.osz, write)
		if f != nil {
			return opRef{}, f
		}
		return opRef{rm: &o, reg: none, fixed: none, width: x.osz}, nil
	case "r8":
		return opRef{reg: int8(x.inst.RegField()), fixed: none, width: 8}, nil
	case "rv":
		return opRef{reg: int8(x.inst.RegField()), fixed: none, width: x.osz}, nil
	case "al":
		return opRef{reg: none, fixed: 0, width: 8}, nil
	case "eax":
		return opRef{reg: none, fixed: 0, width: x.osz}, nil
	case "imm8":
		return opRef{reg: none, fixed: none, imm: true, width: 8}, nil
	case "immv", "imm8s":
		// The decoder has already sign/zero-extended Imm as the form
		// demands; the operand reads at full operand size.
		return opRef{reg: none, fixed: none, imm: true, width: x.osz}, nil
	}
	panic("lento: bad operand form " + tok)
}

func (x *exec) refRead(r opRef) uint64 {
	switch {
	case r.rm != nil:
		return x.rmRead(*r.rm)
	case r.imm:
		return x.inst.Imm & maskW(r.width)
	case r.reg >= 0:
		return x.gprRead(uint8(r.reg), r.width)
	default:
		return x.gprRead(uint8(r.fixed), r.width)
	}
}

func (x *exec) refWrite(r opRef, v uint64) {
	switch {
	case r.rm != nil:
		x.rmWrite(*r.rm, v)
	case r.reg >= 0:
		x.gprWrite(uint8(r.reg), r.width, v)
	default:
		x.gprWrite(uint8(r.fixed), r.width, v)
	}
}
