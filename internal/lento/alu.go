package lento

import (
	"strings"

	"pokeemu/internal/x86"
)

// execALU interprets the arithmetic/logic families. It reports false when
// the handler name is outside its domain.
func (x *exec) execALU(name string) (*fault, bool) {
	base := strings.TrimSuffix(name, "_alias")
	us := strings.IndexByte(base, '_')
	op := base
	form := ""
	if us >= 0 {
		op, form = base[:us], base[us+1:]
	}
	switch op {
	case "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "test":
		return x.binALU(op, form), true
	case "inc", "dec":
		return x.incDec(op == "inc", form), true
	case "not", "neg":
		return x.notNeg(op == "neg", form), true
	case "mul", "imul", "imul1":
		return x.mulOne(op != "mul", form), true
	case "imul2", "imul3":
		return x.imulMulti(op == "imul3"), true
	case "div", "idiv":
		return x.divide(op == "idiv", form), true
	case "rol", "ror", "rcl", "rcr", "shl", "shr", "sar":
		return x.shiftRotate(op, form), true
	case "aam":
		return x.aam(), true
	case "aad":
		return x.aad(), true
	case "cwde":
		return x.cwde(), true
	case "cdq":
		return x.cdq(), true
	case "lahf":
		return x.lahf(), true
	case "sahf":
		return x.sahf(), true
	case "clc", "stc", "cmc", "cld", "std", "cli", "sti":
		return x.flagOp(op), true
	case "xchg":
		return x.xchg(form), true
	case "xadd":
		return x.xadd(form), true
	case "cmpxchg":
		return x.cmpxchg(form), true
	case "bswap":
		return x.bswap(), true
	}
	return nil, false
}

func splitForm(form string) (dst, src string) {
	us := strings.IndexByte(form, '_')
	return form[:us], form[us+1:]
}

func (x *exec) binALU(op, form string) *fault {
	dstTok, srcTok := splitForm(form)
	readOnly := op == "cmp" || op == "test"
	dst, f := x.resolveForm(dstTok, !readOnly)
	if f != nil {
		return f
	}
	src, f := x.resolveForm(srcTok, false)
	if f != nil {
		return f
	}
	a := x.refRead(dst)
	bv := x.refRead(src)
	w := dst.width
	var r uint64
	switch op {
	case "add":
		r = (a + bv) & maskW(w)
		x.addFlags(a, bv, 0, r, w)
	case "adc":
		cin := x.flag(x86.FlagCF)
		r = (a + bv + cin) & maskW(w)
		x.addFlags(a, bv, cin, r, w)
	case "sub", "cmp":
		r = (a - bv) & maskW(w)
		x.subFlags(a, bv, 0, r, w)
	case "sbb":
		cin := x.flag(x86.FlagCF)
		r = (a - bv - cin) & maskW(w)
		x.subFlags(a, bv, cin, r, w)
	case "and", "test":
		r = a & bv
		x.logicFlags(r, w)
	case "or":
		r = a | bv
		x.logicFlags(r, w)
	case "xor":
		r = a ^ bv
		x.logicFlags(r, w)
	}
	if !readOnly {
		x.refWrite(dst, r)
	}
	x.done()
	return nil
}

func (x *exec) incDec(isInc bool, form string) *fault {
	var dst opRef
	if form == "r" {
		dst = opRef{reg: -1, fixed: int8(x.inst.Opcode & 7), width: x.osz}
	} else {
		var f *fault
		dst, f = x.resolveForm(form, true)
		if f != nil {
			return f
		}
	}
	a := x.refRead(dst)
	var r uint64
	if isInc {
		r = (a + 1) & maskW(dst.width)
	} else {
		r = (a - 1) & maskW(dst.width)
	}
	x.incDecFlags(a, r, dst.width, !isInc)
	x.refWrite(dst, r)
	x.done()
	return nil
}

func (x *exec) notNeg(isNeg bool, form string) *fault {
	dst, f := x.resolveForm(form, true)
	if f != nil {
		return f
	}
	a := x.refRead(dst)
	w := dst.width
	if isNeg {
		r := -a & maskW(w)
		x.subFlags(0, a, 0, r, w)
		x.refWrite(dst, r)
	} else {
		x.refWrite(dst, ^a&maskW(w)) // NOT affects no flags
	}
	x.done()
	return nil
}

// mulOne is the one-operand mul/imul: widening multiply into xDX:xAX (or AX).
func (x *exec) mulOne(signed bool, form string) *fault {
	src, f := x.resolveForm(form, false)
	if f != nil {
		return f
	}
	w := src.width
	w2 := 2 * w
	a := x.gprRead(0, w) // AL / AX / EAX
	m := x.refRead(src)
	var wide uint64
	if signed {
		wide = uint64(signExt(a, w)*signExt(m, w)) & maskW(w2)
	} else {
		wide = a * m & maskW(w2)
	}
	lo := wide & maskW(w)
	hi := wide >> w & maskW(w)
	if w == 8 {
		x.gprWrite(0, 16, wide&0xffff) // AX
	} else {
		x.gprWrite(0, w, lo)
		x.gprWrite(2, w, hi) // DX / EDX
	}
	var over bool
	if signed {
		over = wide != uint64(signExt(lo, w))&maskW(w2)
	} else {
		over = hi != 0
	}
	x.setFlagB(x86.FlagCF, over)
	x.setFlagB(x86.FlagOF, over)
	x.mulUndefFlags()
	x.done()
	return nil
}

// mulUndefFlags applies the Bochs policy for the flags mul leaves
// undefined: SF/ZF/PF/AF forced to zero.
func (x *exec) mulUndefFlags() {
	x.setFlag(x86.FlagSF, 0)
	x.setFlag(x86.FlagZF, 0)
	x.setFlag(x86.FlagPF, 0)
	x.setFlag(x86.FlagAF, 0)
}

// imulMulti is the two/three-operand signed multiply (truncating).
func (x *exec) imulMulti(threeOp bool) *fault {
	w := x.osz
	w2 := 2 * w
	src, f := x.resolveRM(w, false)
	if f != nil {
		return f
	}
	m := x.rmRead(src)
	var a uint64
	if threeOp {
		a = x.inst.Imm & maskW(w)
	} else {
		a = x.gprRead(x.inst.RegField(), w)
	}
	wide := uint64(signExt(a, w)*signExt(m, w)) & maskW(w2)
	r := wide & maskW(w)
	over := wide != uint64(signExt(r, w))&maskW(w2)
	x.gprWrite(x.inst.RegField(), w, r)
	x.setFlagB(x86.FlagCF, over)
	x.setFlagB(x86.FlagOF, over)
	x.mulUndefFlags()
	x.done()
	return nil
}

// divide implements div/idiv with the #DE checks (divide by zero and
// quotient overflow). The divide-error fault leaves all state untouched
// and does not advance EIP.
func (x *exec) divide(signed bool, form string) *fault {
	src, f := x.resolveForm(form, false)
	if f != nil {
		return f
	}
	w := src.width
	w2 := 2 * w
	d := x.refRead(src)
	de := &fault{vec: x86.ExcDE}
	if d == 0 {
		return de
	}

	// Dividend: AX for byte ops, xDX:xAX otherwise.
	var dividend uint64
	if w == 8 {
		dividend = x.gprRead(0, 16)
	} else {
		dividend = x.gprRead(2, w)<<w | x.gprRead(0, w)
	}
	var q, r uint64
	if signed {
		// Signed division via magnitudes, rounding toward zero.
		dw := uint64(signExt(d, w)) & maskW(w2)
		negA := dividend>>(w2-1)&1 == 1
		negB := dw>>(w2-1)&1 == 1
		absA := dividend
		if negA {
			absA = -dividend & maskW(w2)
		}
		absB := dw
		if negB {
			absB = -dw & maskW(w2)
		}
		qm := absA / absB
		rm := absA % absB
		q = qm
		if negA != negB {
			q = -qm & maskW(w2)
		}
		r = rm
		if negA {
			r = -rm & maskW(w2)
		}
		// Overflow: quotient must fit in w bits signed.
		if uint64(signExt(q&maskW(w), w))&maskW(w2) != q {
			return de
		}
	} else {
		q = dividend / d
		r = dividend % d
		if q > maskW(w) {
			return de
		}
	}
	if w == 8 {
		x.gprWrite(0, 16, r&0xff<<8|q&0xff) // AH:AL
	} else {
		x.gprWrite(0, w, q&maskW(w))
		x.gprWrite(2, w, r&maskW(w))
	}
	// Bochs leaves the (architecturally undefined) flags unchanged.
	x.done()
	return nil
}

// shiftRotate implements the grp2 shift and rotate family. Forms are
// "<rm8|rmv>_<imm8|1|cl>". The destination is write-translated before the
// count check, so a faulting memory operand raises even for count 0.
func (x *exec) shiftRotate(op, form string) *fault {
	dstTok, amtTok := splitForm(form)
	dst, f := x.resolveForm(dstTok, true)
	if f != nil {
		return f
	}
	w := dst.width
	var count uint8
	switch amtTok {
	case "imm8":
		count = uint8(x.inst.Imm) & 0x1f
	case "1":
		count = 1
	case "cl":
		count = uint8(x.gprRead(1, 8)) & 0x1f
	}
	a := x.refRead(dst)

	// A zero (masked) count changes nothing, including flags.
	if count == 0 {
		x.done()
		return nil
	}

	isOne := count == 1
	// ShiftMultiOF is the Bochs policy: OF is the 1-bit formula for
	// count 1 and zero otherwise; rotates compute OF for every count.
	shiftOF := func(formula uint64) uint64 {
		if isOne {
			return formula
		}
		return 0
	}

	switch op {
	case "shl":
		wide := shlW(a, count, w+1)
		r := wide & maskW(w)
		cf := wide >> w & 1
		x.setFlag(x86.FlagCF, cf)
		x.setFlag(x86.FlagOF, shiftOF(r>>(w-1)&1^cf))
		x.szp(r, w)
		x.refWrite(dst, r)
	case "shr":
		r := shrW(a, count, w)
		x.setFlag(x86.FlagCF, shrW(a, count-1, w)&1)
		x.setFlag(x86.FlagOF, shiftOF(a>>(w-1)&1))
		x.szp(r, w)
		x.refWrite(dst, r)
	case "sar":
		r := sarW(a, count, w)
		x.setFlag(x86.FlagCF, sarW(a, count-1, w)&1)
		x.setFlag(x86.FlagOF, shiftOF(0))
		x.szp(r, w)
		x.refWrite(dst, r)
	case "rol", "ror":
		n := uint8(uint32(count) % uint32(w))
		wn := w - n
		var r uint64
		if op == "rol" {
			r = shlW(a, n, w) | shrW(a, wn, w)
		} else {
			r = shrW(a, n, w) | shlW(a, wn, w)
		}
		var cf uint64
		if op == "rol" {
			cf = r & 1
		} else {
			cf = r >> (w - 1) & 1
		}
		x.setFlag(x86.FlagCF, cf)
		if op == "rol" {
			x.setFlag(x86.FlagOF, r>>(w-1)&1^cf)
		} else {
			x.setFlag(x86.FlagOF, r>>(w-1)&1^r>>(w-2)&1)
		}
		x.refWrite(dst, r)
	case "rcl", "rcr":
		// (w+1)-bit rotate through CF.
		xv := x.flag(x86.FlagCF)<<w | a
		n := uint8(uint32(count) % uint32(w+1))
		wn := w + 1 - n
		var rx uint64
		if op == "rcl" {
			rx = shlW(xv, n, w+1) | shrW(xv, wn, w+1)
		} else {
			rx = shrW(xv, n, w+1) | shlW(xv, wn, w+1)
		}
		if n == 0 {
			rx = xv
		}
		r := rx & maskW(w)
		ncf := rx >> w & 1
		x.setFlag(x86.FlagCF, ncf)
		if op == "rcl" {
			x.setFlag(x86.FlagOF, r>>(w-1)&1^ncf)
		} else {
			x.setFlag(x86.FlagOF, r>>(w-1)&1^r>>(w-2)&1)
		}
		x.refWrite(dst, r)
	}
	x.done()
	return nil
}

func (x *exec) aam() *fault {
	imm := uint8(x.inst.Imm)
	if imm == 0 {
		return &fault{vec: x86.ExcDE}
	}
	al := uint8(x.gprRead(0, 8))
	q := al / imm
	r := al % imm
	x.gprWrite(0, 16, uint64(q)<<8|uint64(r)) // AH=q, AL=r
	x.szp(uint64(r), 8)
	x.aamUndef()
	x.done()
	return nil
}

func (x *exec) aad() *fault {
	imm := uint8(x.inst.Imm)
	ax := x.gprRead(0, 16)
	al := uint8(ax)
	ah := uint8(ax >> 8)
	r := al + ah*imm // 8-bit lane, wraps
	x.gprWrite(0, 16, uint64(r)) // AH=0
	x.szp(uint64(r), 8)
	x.aamUndef()
	x.done()
	return nil
}

// aamUndef applies the Bochs policy for aam/aad's undefined flags.
func (x *exec) aamUndef() {
	x.setFlag(x86.FlagCF, 0)
	x.setFlag(x86.FlagOF, 0)
	x.setFlag(x86.FlagAF, 0)
}

func (x *exec) cwde() *fault {
	if x.osz == 32 {
		x.gprWrite(0, 32, uint64(signExt(x.gprRead(0, 16), 16))&maskW(32))
	} else { // cbw
		x.gprWrite(0, 16, uint64(signExt(x.gprRead(0, 8), 8))&maskW(16))
	}
	x.done()
	return nil
}

func (x *exec) cdq() *fault {
	w := x.osz
	var fill uint64
	if x.gprRead(0, w)>>(w-1)&1 == 1 {
		fill = maskW(w)
	}
	x.gprWrite(2, w, fill)
	x.done()
	return nil
}

func (x *exec) lahf() *fault {
	v := x.flag(x86.FlagCF) |
		2 | // fixed bit 1
		x.flag(x86.FlagPF)<<2 |
		x.flag(x86.FlagAF)<<4 |
		x.flag(x86.FlagZF)<<6 |
		x.flag(x86.FlagSF)<<7
	x.gprWrite(4, 8, v) // AH
	x.done()
	return nil
}

func (x *exec) sahf() *fault {
	ah := x.gprRead(4, 8)
	x.setFlag(x86.FlagCF, ah&1)
	x.setFlag(x86.FlagPF, ah>>2&1)
	x.setFlag(x86.FlagAF, ah>>4&1)
	x.setFlag(x86.FlagZF, ah>>6&1)
	x.setFlag(x86.FlagSF, ah>>7&1)
	x.done()
	return nil
}

func (x *exec) flagOp(op string) *fault {
	switch op {
	case "clc":
		x.setFlag(x86.FlagCF, 0)
	case "stc":
		x.setFlag(x86.FlagCF, 1)
	case "cmc":
		x.setFlag(x86.FlagCF, x.flag(x86.FlagCF)^1)
	case "cld":
		x.setFlag(x86.FlagDF, 0)
	case "std":
		x.setFlag(x86.FlagDF, 1)
	case "cli":
		x.setFlag(x86.FlagIF, 0)
	case "sti":
		x.setFlag(x86.FlagIF, 1)
	}
	x.done()
	return nil
}

func (x *exec) xchg(form string) *fault {
	if form == "eax_r" {
		w := x.osz
		r := x.inst.Opcode & 7
		a := x.gprRead(0, w)
		bv := x.gprRead(r, w)
		x.gprWrite(0, w, bv)
		x.gprWrite(r, w, a)
		x.done()
		return nil
	}
	dstTok, _ := splitForm(form)
	dst, f := x.resolveForm(dstTok, true)
	if f != nil {
		return f
	}
	src := opRef{reg: int8(x.inst.RegField()), fixed: -1, width: dst.width}
	a := x.refRead(dst)
	bv := x.refRead(src)
	x.refWrite(dst, bv)
	x.refWrite(src, a)
	x.done()
	return nil
}

func (x *exec) xadd(form string) *fault {
	dstTok, _ := splitForm(form)
	dst, f := x.resolveForm(dstTok, true)
	if f != nil {
		return f
	}
	src := opRef{reg: int8(x.inst.RegField()), fixed: -1, width: dst.width}
	a := x.refRead(dst)
	bv := x.refRead(src)
	sum := (a + bv) & maskW(dst.width)
	x.addFlags(a, bv, 0, sum, dst.width)
	x.refWrite(src, a) // source register sees the old value first
	x.refWrite(dst, sum)
	x.done()
	return nil
}

// cmpxchg: compare the accumulator with dst; on match store src, otherwise
// reload the accumulator. The destination is written in either case, so
// write permission is verified before any register update.
func (x *exec) cmpxchg(form string) *fault {
	dstTok, _ := splitForm(form)
	dst, f := x.resolveForm(dstTok, true) // write-translated up front
	if f != nil {
		return f
	}
	w := dst.width
	acc := x.gprRead(0, w)
	old := x.refRead(dst)
	src := x.gprRead(x.inst.RegField(), w)
	x.subFlags(acc, old, 0, (acc-old)&maskW(w), w)
	if acc == old {
		x.refWrite(dst, src)
	} else {
		x.refWrite(dst, old)
		x.gprWrite(0, w, old) // accumulator reloaded only on mismatch
	}
	x.done()
	return nil
}

func (x *exec) bswap() *fault {
	r := x.inst.Opcode & 7
	a := uint32(x.gprRead(r, 32))
	x.gprWrite(r, 32, uint64(a>>24|a>>8&0xff00|a<<8&0xff0000|a<<24))
	x.done()
	return nil
}
