package lento

import (
	"strings"

	"pokeemu/internal/x86"
)

// execFlow interprets branches, calls, returns, software interrupts, iret,
// hlt, and the trivial nop/ud2.
func (x *exec) execFlow(name string) (*fault, bool) {
	m := x.m
	switch name {
	case "nop":
		x.done()
		return nil, true
	case "ud2":
		return &fault{vec: x86.ExcUD}, true
	case "hlt":
		x.done() // EIP points past hlt while halted
		x.halted = true
		return nil, true
	case "jmp_rel8", "jmp_relv":
		m.EIP = x.relTarget()
		return nil, true
	case "jmp_rmv":
		src, f := x.resolveRM(x.osz, false)
		if f != nil {
			return f, true
		}
		m.EIP = uint32(x.rmRead(src))
		return nil, true
	case "call_relv":
		next := m.EIP + uint32(x.inst.Len)
		if f := x.push(uint64(next) & maskW(x.osz)); f != nil {
			return f, true
		}
		target := next + uint32(x.inst.Imm)
		if x.osz == 16 {
			target &= 0xffff
		}
		m.EIP = target
		return nil, true
	case "call_rmv":
		src, f := x.resolveRM(x.osz, false)
		if f != nil {
			return f, true
		}
		t := x.rmRead(src)
		next := m.EIP + uint32(x.inst.Len)
		if f := x.push(uint64(next) & maskW(x.osz)); f != nil {
			return f, true
		}
		m.EIP = uint32(t)
		return nil, true
	case "ret":
		t, f := x.pop()
		if f != nil {
			return f, true
		}
		m.EIP = uint32(t)
		return nil, true
	case "ret_imm16":
		t, f := x.pop()
		if f != nil {
			return f, true
		}
		m.GPR[x86.ESP] += uint32(x.inst.Imm) & 0xffff
		m.EIP = uint32(t)
		return nil, true
	case "jecxz":
		x.condBranch(m.GPR[x86.ECX] == 0)
		return nil, true
	case "loop", "loope", "loopne":
		ecx := m.GPR[x86.ECX] - 1
		m.GPR[x86.ECX] = ecx
		cond := ecx != 0
		if name == "loope" {
			cond = cond && x.flag(x86.FlagZF) == 1
		} else if name == "loopne" {
			cond = cond && x.flag(x86.FlagZF) == 0
		}
		x.condBranch(cond)
		return nil, true
	case "int3":
		x.done()
		return &fault{vec: x86.ExcBP}, true
	case "int_imm8":
		x.done()
		return &fault{vec: uint8(x.inst.Imm)}, true
	case "into":
		if x.flag(x86.FlagOF) == 1 {
			x.done()
			return &fault{vec: x86.ExcOF}, true
		}
		x.done()
		return nil, true
	case "iret":
		return x.iret(), true
	}
	if strings.HasPrefix(name, "j") &&
		(strings.HasSuffix(name, "_rel8") || strings.HasSuffix(name, "_relv")) {
		cc := name[1:strings.IndexByte(name, '_')]
		x.condBranch(x.condValue(ccIndex(cc)))
		return nil, true
	}
	return nil, false
}

// relTarget is the taken target of a relative branch: next + displacement,
// truncated to 16 bits at 16-bit operand size.
func (x *exec) relTarget() uint32 {
	next := x.m.EIP + uint32(x.inst.Len)
	var rel uint32
	if x.inst.ImmSize == 1 {
		rel = uint32(int32(int8(uint8(x.inst.Imm))))
	} else {
		rel = uint32(x.inst.Imm)
	}
	target := next + rel
	if x.osz == 16 {
		target &= 0xffff
	}
	return target
}

// condBranch sets EIP to the taken or fall-through target. Only the taken
// target is truncated at 16-bit operand size.
func (x *exec) condBranch(cond bool) {
	if cond {
		x.m.EIP = x.relTarget()
	} else {
		x.m.EIP += uint32(x.inst.Len)
	}
}

// iret implements the same-privilege protected-mode interrupt return. The
// hardware read order is innermost-first: EIP, then CS, then EFLAGS —
// observable when the three stack slots straddle a page boundary (the
// paper's finding).
func (x *exec) iret() *fault {
	m := x.m
	size := uint32(x.osz / 8)
	eipV, f := x.stackRead(0, uint8(size))
	if f != nil {
		return f
	}
	csV, f := x.stackRead(size, uint8(size))
	if f != nil {
		return f
	}
	flV, f := x.stackRead(2*size, uint8(size))
	if f != nil {
		return f
	}

	sel := uint16(csV)
	// Same-privilege return requires RPL == CPL (0).
	if sel&3 != 0 {
		return &fault{vec: x86.ExcGP, err: uint32(sel) & 0xfffc, hasErr: true}
	}
	if f := x.loadSegment(x86.CS, sel, true); f != nil {
		return f
	}
	m.GPR[x86.ESP] += 3 * size
	m.EIP = uint32(eipV)
	x.unpackEFLAGS(flV, true)
	return nil
}

// execString interprets the string instruction family with rep prefixes.
func (x *exec) execString(name string) (*fault, bool) {
	if !strings.HasPrefix(name, "movs") && !strings.HasPrefix(name, "cmps") &&
		!strings.HasPrefix(name, "stos") && !strings.HasPrefix(name, "lods") &&
		!strings.HasPrefix(name, "scas") {
		return nil, false
	}
	op := name[:4]
	w := uint8(8)
	if strings.HasSuffix(name, "_v") {
		w = x.osz
	}
	return x.stringOp(op, w), true
}

func (x *exec) stringOp(op string, w uint8) *fault {
	m := x.m
	size := uint32(w / 8)
	rep := x.inst.Rep || x.inst.RepNE
	srcSeg := x86.DS
	if x.inst.SegOverride >= 0 {
		srcSeg = x86.SegReg(x.inst.SegOverride)
	}

	iterations := 0
	for {
		if rep && m.GPR[x86.ECX] == 0 {
			break
		}
		if rep {
			if iterations++; iterations > repBudget {
				x.timeout = true
				return nil
			}
		}

		delta := size
		if x.flag(x86.FlagDF) == 1 {
			delta = -size
		}

		esi := m.GPR[x86.ESI]
		edi := m.GPR[x86.EDI]
		var stop bool // repe/repne termination for cmps/scas
		switch op {
		case "movs":
			v, f := x.readMem(srcSeg, esi, uint8(size), false)
			if f != nil {
				return f
			}
			if f := x.writeMem(x86.ES, edi, uint8(size), false, v); f != nil {
				return f
			}
			m.GPR[x86.ESI] = esi + delta
			m.GPR[x86.EDI] = edi + delta
		case "stos":
			if f := x.writeMem(x86.ES, edi, uint8(size), false, x.gprRead(0, w)); f != nil {
				return f
			}
			m.GPR[x86.EDI] = edi + delta
		case "lods":
			v, f := x.readMem(srcSeg, esi, uint8(size), false)
			if f != nil {
				return f
			}
			x.gprWrite(0, w, v)
			m.GPR[x86.ESI] = esi + delta
		case "cmps":
			a, f := x.readMem(srcSeg, esi, uint8(size), false)
			if f != nil {
				return f
			}
			d, f := x.readMem(x86.ES, edi, uint8(size), false)
			if f != nil {
				return f
			}
			x.subFlags(a, d, 0, (a-d)&maskW(w), w)
			m.GPR[x86.ESI] = esi + delta
			m.GPR[x86.EDI] = edi + delta
			stop = x.repTermination()
		case "scas":
			a := x.gprRead(0, w)
			d, f := x.readMem(x86.ES, edi, uint8(size), false)
			if f != nil {
				return f
			}
			x.subFlags(a, d, 0, (a-d)&maskW(w), w)
			m.GPR[x86.EDI] = edi + delta
			stop = x.repTermination()
		}

		if !rep {
			break
		}
		m.GPR[x86.ECX]--
		if stop {
			break
		}
	}
	x.done()
	return nil
}

// repTermination reports the "stop repeating" condition for the repe/repne
// forms of cmps/scas.
func (x *exec) repTermination() bool {
	zf := x.flag(x86.FlagZF) == 1
	if x.inst.RepNE {
		return zf // repne: stop when equal
	}
	return !zf // repe: stop when not equal
}
