// In-package coverage suite for the direct-decode interpreter. Every test
// here is differential: the program runs on lento and on fidelis (the hi-fi
// IR evaluator) and the observable behavior — event stream, step count, and
// final snapshot — must be identical. That way the expected values are never
// hand-computed; the suite both drives lento's statement coverage (the
// `make cover` floor) and re-checks the voting-peer contract on each path.
package lento_test

import (
	"reflect"
	"sync"
	"testing"

	"pokeemu/internal/core"
	"pokeemu/internal/emu"
	"pokeemu/internal/harness"
	"pokeemu/internal/lento"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// uniqueInstrs caches the decoder exploration (it walks ~200k paths).
var uniqueInstrs = sync.OnceValue(func() []*core.UniqueInstr {
	return core.ExploreInstructionSet().Unique
})

// runBoth executes prog on lento and fidelis over the same image and fails
// the test on any observable divergence. It returns the lento result so
// callers can assert what actually happened (fault vectors, halts).
func runBoth(t *testing.T, name string, image *machine.Memory, prog []byte, maxSteps int) *harness.Result {
	t.Helper()
	rl := harness.Run(harness.LentoFactory(), image, prog, maxSteps)
	rf := harness.Run(harness.FidelisFactory(), image, prog, maxSteps)
	if !reflect.DeepEqual(rl.Events, rf.Events) {
		t.Errorf("%s: event streams differ:\n  lento:   %v\n  fidelis: %v", name, rl.Events, rf.Events)
	}
	if rl.Steps != rf.Steps {
		t.Errorf("%s: steps differ: lento %d, fidelis %d", name, rl.Steps, rf.Steps)
	}
	if !reflect.DeepEqual(rl.Snapshot, rf.Snapshot) {
		t.Errorf("%s: final snapshots differ", name)
	}
	return rl
}

// lastVector returns the exception vector of the final exception event, or
// -1 if the run raised none.
func lastVector(r *harness.Result) int {
	for i := len(r.Events) - 1; i >= 0; i-- {
		if r.Events[i].Exception != nil {
			return int(r.Events[i].Exception.Vector)
		}
	}
	return -1
}

// expectVector runs the program differentially and additionally requires
// that it faulted with the given vector (sanity that the scenario really
// exercised the intended path, not a decode error).
func expectVector(t *testing.T, name string, image *machine.Memory, prog []byte, vec int) {
	t.Helper()
	r := runBoth(t, name, image, prog, 64)
	if got := lastVector(r); got != vec {
		t.Errorf("%s: last exception vector = %d, want %d (events %v)", name, got, vec, r.Events)
	}
}

// prog concatenates instruction byte slices and appends hlt.
func prog(chunks ...[]byte) []byte {
	var p []byte
	for _, c := range chunks {
		p = append(p, c...)
	}
	return append(p, x86.AsmHlt()...)
}

// sweep runs the full unique-instruction matrix under the given register
// and flags pre-state. The matrix is the same one TestLentoDifferential in
// the harness package runs; doing it here (with a second pre-state) is what
// earns the lento package its own coverage profile.
func sweep(t *testing.T, regs map[x86.Reg]uint32, flags uint32) {
	t.Helper()
	pre := []byte{}
	for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.EBP, x86.ESI, x86.EDI} {
		pre = append(pre, x86.AsmMovRegImm32(r, regs[r])...)
	}
	pre = append(pre, x86.AsmPushImm32(flags)...)
	pre = append(pre, x86.AsmPopf()...)

	lf := harness.LentoFactory()
	ff := harness.FidelisFactory()
	for _, u := range uniqueInstrs() {
		p := append(append([]byte{}, pre...), u.Repr...)
		p = append(p, x86.AsmHlt()...)
		rl := harness.Run(lf, nil, p, 256)
		rf := harness.Run(ff, nil, p, 256)
		if !reflect.DeepEqual(rl.Events, rf.Events) || rl.Steps != rf.Steps ||
			!reflect.DeepEqual(rl.Snapshot, rf.Snapshot) {
			t.Errorf("%s (% x): lento and fidelis diverge", u.Key(), u.Repr)
		}
	}
}

// TestMatrixBaseline is the in-package edition of the harness differential
// matrix: mixed flags, small shift/rep counts, addresses into the data
// window.
func TestMatrixBaseline(t *testing.T) {
	sweep(t, map[x86.Reg]uint32{
		x86.EAX: 0x00010203, x86.ECX: 3, x86.EDX: 0x80,
		x86.EBX: 0x2000, x86.EBP: 0x3000, x86.ESI: 0x2100, x86.EDI: 0x2200,
	}, 0x8d5)
}

// TestMatrixAlternate reruns the matrix under an adversarial pre-state:
// all flags clear but DF set (string ops walk down, every condition code
// takes the other branch), a zero divisor register, an out-of-lane shift
// count, and ECX large enough to exercise multi-iteration rep loops.
func TestMatrixAlternate(t *testing.T) {
	sweep(t, map[x86.Reg]uint32{
		x86.EAX: 0xffffffff, x86.ECX: 0x21, x86.EDX: 0,
		x86.EBX: 0x5000, x86.EBP: 0x5100, x86.ESI: 0x5180, x86.EDI: 0x51c0,
	}, 0x402) // DF only
}

// ---- Paging ----

func TestPageFaultPaths(t *testing.T) {
	pte := func(page uint32) uint32 { return machine.PTBase + page*4 }

	// Read from a page whose PTE has been cleared: #PF, CR2 = fault address.
	img := machine.BaselineImage()
	img.Write(pte(0x123), 0, 4)
	expectVector(t, "pf-read", img,
		prog(x86.AsmMovRegMem32(x86.EAX, 0x123000)), int(x86.ExcPF))

	// Write to a present page without the RW bit: supervisor writes honor it
	// only under CR0.WP, so the program raises WP first. #PF with the write
	// bit in the error code.
	img = machine.BaselineImage()
	img.Write(pte(0x124), 0x124000|0x5, 4) // P|US, no RW
	expectVector(t, "pf-write-protect", img,
		prog(x86.AsmMovRegCR(x86.EAX, 0),
			[]byte{0x0d, 0x00, 0x00, 0x01, 0x00}, // or eax, 1<<16 (WP)
			x86.AsmMovCRReg(0, x86.EAX),
			x86.AsmMovMemImm32(0x124000, 0xdead)), int(x86.ExcPF))

	// A 4-byte access straddling into a not-present page faults on the
	// second page of the crossing.
	img = machine.BaselineImage()
	img.Write(pte(0x126), 0, 4)
	expectVector(t, "pf-cross", img,
		prog(x86.AsmMovRegMem32(x86.EAX, 0x125ffd)), int(x86.ExcPF))

	// Not-present page directory entry: the walk faults at the PDE level.
	img = machine.BaselineImage()
	img.Write(machine.PDBase+3*4, 0, 4)
	expectVector(t, "pf-pde", img,
		prog(x86.AsmMovRegMem32(x86.EAX, 3<<22)), int(x86.ExcPF))
}

// ---- Segmentation ----

// descImage builds a baseline image with an extra GDT descriptor at index
// 11 (selector 0x58).
func descImage(base, limit20 uint32, attr uint16) *machine.Memory {
	img := machine.BaselineImage()
	lo, hi := x86.MakeDescriptor(base, limit20, attr)
	img.Write(machine.GDTBase+11*8, uint64(lo), 4)
	img.Write(machine.GDTBase+11*8+4, uint64(hi), 4)
	return img
}

const sel11 = 11 << 3 // the descriptor descImage plants

// loadES assembles "mov ax, sel; mov es, ax".
func loadES(sel uint16) []byte {
	return append(x86.AsmMovRegImm32(x86.EAX, uint32(sel)), x86.AsmMovSregReg(x86.ES, x86.EAX)...)
}

func TestSegmentLoadFaults(t *testing.T) {
	flatData := uint16(x86.AttrP | x86.AttrS | x86.AttrWritable | x86.AttrG | x86.AttrDB)

	// Selector with the TI bit: no LDT exists, #GP.
	expectVector(t, "seg-ti", nil, prog(loadES(sel11|4)), int(x86.ExcGP))

	// Selector beyond the GDT limit.
	expectVector(t, "seg-limit", nil, prog(loadES(machine.GDTEntries*8)), int(x86.ExcGP))

	// System descriptor (S clear).
	expectVector(t, "seg-system", descImage(0, 0xfffff, flatData&^x86.AttrS),
		prog(loadES(sel11)), int(x86.ExcGP))

	// Not-present data segment: #NP.
	expectVector(t, "seg-np", descImage(0, 0xfffff, flatData&^x86.AttrP),
		prog(loadES(sel11)), int(x86.ExcNP))

	// Execute-only code segment is not readable as data.
	expectVector(t, "seg-execonly", descImage(0, 0xfffff, uint16(x86.AttrP|x86.AttrS|x86.AttrCode|x86.AttrG|x86.AttrDB)),
		prog(loadES(sel11)), int(x86.ExcGP))

	// RPL 3 against a DPL 0 descriptor: privilege check fails.
	expectVector(t, "seg-rpl", descImage(0, 0xfffff, flatData),
		prog(loadES(sel11|3)), int(x86.ExcGP))

	// Null selector loads fine but leaves the segment unusable; the next
	// ES-relative access faults.
	expectVector(t, "seg-null-use", nil,
		prog(loadES(0),
			x86.AsmMovRegImm32(x86.EBX, 0x5000),
			[]byte{0x26, 0x8b, 0x03}), // mov eax, es:[ebx]
		int(x86.ExcGP))
}

func TestStackSegmentFaults(t *testing.T) {
	flatData := uint16(x86.AttrP | x86.AttrS | x86.AttrWritable | x86.AttrG | x86.AttrDB)
	loadSS := func(sel uint16) []byte {
		return append(x86.AsmMovRegImm32(x86.EAX, uint32(sel)), x86.AsmMovSregReg(x86.SS, x86.EAX)...)
	}

	// Null SS is a #GP(0) at load time.
	expectVector(t, "ss-null", nil, prog(loadSS(0)), int(x86.ExcGP))

	// SS requires RPL == DPL == 0.
	expectVector(t, "ss-rpl", descImage(0, 0xfffff, flatData),
		prog(loadSS(sel11|1)), int(x86.ExcGP))
	expectVector(t, "ss-dpl", descImage(0, 0xfffff, flatData|3<<x86.AttrDPLShift),
		prog(loadSS(sel11)), int(x86.ExcGP))

	// Read-only data can't back a stack.
	expectVector(t, "ss-readonly", descImage(0, 0xfffff, flatData&^x86.AttrWritable),
		prog(loadSS(sel11)), int(x86.ExcGP))

	// Not-present SS raises #SS (not #NP).
	expectVector(t, "ss-np", descImage(0, 0xfffff, flatData&^x86.AttrP),
		prog(loadSS(sel11)), int(x86.ExcSS))
}

func TestSegmentLimitChecks(t *testing.T) {
	// Byte-granular ES with limit 0xfff: an access whose last byte is past
	// the limit takes #GP, an in-range one succeeds.
	smallData := uint16(x86.AttrP | x86.AttrS | x86.AttrWritable | x86.AttrDB)
	img := descImage(0x5000, 0xfff, smallData)
	expectVector(t, "limit-over", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0xffd),
			[]byte{0x26, 0x8b, 0x03}), // crosses the limit
		int(x86.ExcGP))
	r := runBoth(t, "limit-in", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0xffc),
			[]byte{0x26, 0x8b, 0x03}), 64)
	if v := lastVector(r); v != -1 {
		t.Errorf("limit-in faulted with vector %d", v)
	}

	// Offset arithmetic that wraps the 4 GiB space is rejected.
	expectVector(t, "limit-wrap", nil,
		prog(x86.AsmMovRegImm32(x86.EBX, 0xffffffff),
			[]byte{0x26, 0x8b, 0x03}),
		int(x86.ExcGP))

	// Expand-down: offsets at or below the limit fault, above it are valid
	// (up to the 32-bit upper bound with the DB bit).
	expDown := uint16(x86.AttrP | x86.AttrS | x86.AttrWritable | x86.AttrExpand | x86.AttrDB)
	img = descImage(0, 0xfff, expDown)
	expectVector(t, "expanddown-low", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0x800),
			[]byte{0x26, 0x8b, 0x03}),
		int(x86.ExcGP))
	r = runBoth(t, "expanddown-ok", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0x5000),
			[]byte{0x26, 0x8b, 0x03}), 64)
	if v := lastVector(r); v != -1 {
		t.Errorf("expanddown-ok faulted with vector %d", v)
	}
	// Without DB the upper bound is 0xffff.
	img = descImage(0, 0xfff, expDown&^x86.AttrDB)
	expectVector(t, "expanddown-16bit-over", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0x1fffd),
			[]byte{0x26, 0x8b, 0x03}),
		int(x86.ExcGP))

	// Writing through a read-only ES faults even though reads succeed.
	img = descImage(0, 0xfffff, uint16(x86.AttrP|x86.AttrS|x86.AttrG|x86.AttrDB))
	expectVector(t, "write-readonly", img,
		prog(loadES(sel11),
			x86.AsmMovRegImm32(x86.EBX, 0x5000),
			[]byte{0x26, 0x89, 0x03}), // mov es:[ebx], eax
		int(x86.ExcGP))
}

// ---- Exception delivery ----

func TestDeliveryFailures(t *testing.T) {
	gate := func(v uint32) uint32 { return machine.IDTBase + v*8 }

	// #UD with the IDT limit pulled to zero: the gate is out of range, #DF
	// is out of range too — shutdown.
	shrink := prog(
		x86.AsmMovMemImm16(machine.ScratchBase+0x100, 0),
		x86.AsmMovMemImm32(machine.ScratchBase+0x102, machine.IDTBase),
		x86.AsmLIDT(machine.ScratchBase+0x100),
		[]byte{0x0f, 0x0b}, // ud2
	)
	r := runBoth(t, "idt-empty", nil, shrink, 64)
	if len(r.Events) == 0 || r.Events[len(r.Events)-1].Kind != emu.EventShutdown {
		t.Errorf("idt-empty: events %v, want terminal shutdown", r.Events)
	}

	// Non-present #UD gate: delivery fails, escalates to a working #DF gate.
	img := machine.BaselineImage()
	img.Write(gate(uint32(x86.ExcUD))+4, 0, 4)
	expectVector(t, "gate-notpresent", img, prog([]byte{0x0f, 0x0b}), int(x86.ExcUD))

	// Malformed gate type (task gate bits): same escalation.
	img = machine.BaselineImage()
	img.Write(gate(uint32(x86.ExcUD))+4, 0x8500, 4)
	expectVector(t, "gate-badtype", img, prog([]byte{0x0f, 0x0b}), int(x86.ExcUD))

	// Trap gate (type 0xf) leaves IF set; the differential snapshot pins it.
	img = machine.BaselineImage()
	hi := img.Read(gate(3)+4, 4)
	img.Write(gate(3)+4, hi|0x100, 4) // type 0xe -> 0xf
	expectVector(t, "trap-gate", img, prog([]byte{0xcc}), 3)

	// Stack unable to hold the exception frame: the delivery pushes fault,
	// shutdown. SS gets a tiny segment whose limit ESP is far beyond.
	flatData := uint16(x86.AttrP | x86.AttrS | x86.AttrWritable | x86.AttrDB)
	img = descImage(0, 0xfff, flatData)
	bad := prog(
		x86.AsmMovRegImm32(x86.EAX, sel11),
		x86.AsmMovSregReg(x86.SS, x86.EAX),
		[]byte{0x0f, 0x0b}, // ud2; frame push at ESP=0x200800 > limit
	)
	r = runBoth(t, "frame-push-fault", img, bad, 64)
	if len(r.Events) == 0 || r.Events[len(r.Events)-1].Kind != emu.EventShutdown {
		t.Errorf("frame-push-fault: events %v, want terminal shutdown", r.Events)
	}
}

func TestSoftwareInterrupts(t *testing.T) {
	expectVector(t, "int3", nil, prog([]byte{0xcc}), 3)
	expectVector(t, "int-0x40", nil, prog([]byte{0xcd, 0x40}), 0x40)
	// into with OF set traps; with OF clear it falls through.
	expectVector(t, "into-of", nil,
		prog(x86.AsmPushImm32(0x802), x86.AsmPopf(), []byte{0xce}), int(x86.ExcOF))
	r := runBoth(t, "into-clear", nil,
		prog(x86.AsmPushImm32(0x2), x86.AsmPopf(), []byte{0xce}), 64)
	if v := lastVector(r); v != -1 {
		t.Errorf("into-clear faulted with vector %d", v)
	}
}

// ---- Arithmetic fault and edge paths ----

func TestDivideFaults(t *testing.T) {
	// div by zero at 8/32-bit widths.
	expectVector(t, "div32-zero", nil,
		prog(x86.AsmMovRegImm32(x86.ECX, 0), []byte{0xf7, 0xf1}), int(x86.ExcDE))
	expectVector(t, "div8-zero", nil,
		prog(x86.AsmMovRegImm32(x86.ECX, 0), []byte{0xf6, 0xf1}), int(x86.ExcDE))
	// Quotient overflow.
	expectVector(t, "div8-overflow", nil,
		prog(x86.AsmMovRegImm32(x86.EAX, 0x1000),
			x86.AsmMovRegImm32(x86.ECX, 1), []byte{0xf6, 0xf1}), int(x86.ExcDE))
	// idiv INT_MIN / -1 overflows.
	expectVector(t, "idiv32-overflow", nil,
		prog(x86.AsmMovRegImm32(x86.EAX, 0x80000000),
			x86.AsmMovRegImm32(x86.EDX, 0xffffffff),
			x86.AsmMovRegImm32(x86.ECX, 0xffffffff),
			[]byte{0xf7, 0xf9}), int(x86.ExcDE))
	// aam 0 divides by the immediate.
	expectVector(t, "aam-zero", nil, prog([]byte{0xd4, 0x00}), int(x86.ExcDE))
	// A successful idiv with negative operands (sign-handling branches).
	r := runBoth(t, "idiv-negative", nil,
		prog(x86.AsmMovRegImm32(x86.EAX, 0xffffff85), // -123
			[]byte{0x99},                       // cdq
			x86.AsmMovRegImm32(x86.ECX, 0xfffffff6), // -10
			[]byte{0xf7, 0xf9}), 64)
	if v := lastVector(r); v != -1 {
		t.Errorf("idiv-negative faulted with vector %d", v)
	}
}

func TestShiftEdges(t *testing.T) {
	// Count 0 leaves flags untouched; counts masked mod 32; rcl/rcr wide
	// rotates through CF; single-bit forms define OF.
	cases := [][]byte{
		{0xc1, 0xe0, 0x00},             // shl eax, 0
		{0xc1, 0xe0, 0x20},             // shl eax, 32 (masked to 0)
		{0xd3, 0xe0},                   // shl eax, cl
		{0xd3, 0xd0},                   // rcl eax, cl
		{0xd3, 0xd8},                   // rcr eax, cl
		{0xc1, 0xd0, 0x09},             // rcl eax, 9
		{0x66, 0xc1, 0xd0, 0x11},       // rcl ax, 17 (mod 17 lane)
		{0x66, 0xc1, 0xd8, 0x11},       // rcr ax, 17
		{0xd1, 0xd0},                   // rcl eax, 1
		{0xd1, 0xd8},                   // rcr eax, 1
		{0xc1, 0xc0, 0x21},             // rol eax, 33
		{0xc1, 0xc8, 0x21},             // ror eax, 33
		{0x0f, 0xa4, 0xc8, 0x00},       // shld eax, ecx, 0
		{0x0f, 0xa4, 0xc8, 0x21},       // shld eax, ecx, 33
		{0x0f, 0xac, 0xc8, 0x05},       // shrd eax, ecx, 5
		{0x66, 0x0f, 0xa4, 0xc8, 0x12}, // shld ax, cx, 18 (count > width)
	}
	for _, c := range cases {
		runBoth(t, "shift", nil,
			prog(x86.AsmMovRegImm32(x86.EAX, 0x80000001),
				x86.AsmMovRegImm32(x86.ECX, 0x23), c), 64)
	}
}

func TestHighByteRegisters(t *testing.T) {
	// AH/CH/DH/BH operand paths (ModRM reg and r/m indices 4-7 at width 8).
	p := prog(
		x86.AsmMovRegImm32(x86.EAX, 0x11223344),
		x86.AsmMovRegImm32(x86.EBX, 0x55667788),
		[]byte{0xb4, 0x7f},       // mov ah, 0x7f
		[]byte{0x00, 0xe7},       // add bh, ah
		[]byte{0x28, 0xfc},       // sub ah, bh
		[]byte{0x88, 0xe5},       // mov ch, ah
		[]byte{0xf6, 0xdd},       // neg ch
		[]byte{0x86, 0xe6},       // xchg ah, dh
	)
	runBoth(t, "high-bytes", nil, p, 64)
}

// ---- Bit operations ----

func TestBitOpsMemoryForms(t *testing.T) {
	// The memory forms of bt/bts/btr/btc address bits beyond the operand:
	// bit 100 of [ebx] touches dword [ebx+12].
	for _, op := range [][]byte{
		{0x0f, 0xa3, 0x0b}, // bt [ebx], ecx
		{0x0f, 0xab, 0x0b}, // bts [ebx], ecx
		{0x0f, 0xb3, 0x0b}, // btr [ebx], ecx
		{0x0f, 0xbb, 0x0b}, // btc [ebx], ecx
	} {
		runBoth(t, "btx-mem", nil,
			prog(x86.AsmMovRegImm32(x86.EBX, 0x5000),
				x86.AsmMovRegImm32(x86.ECX, 100),
				x86.AsmMovMemImm32(0x500c, 0xa5a5a5a5), op), 64)
		// Negative bit index walks backwards.
		runBoth(t, "btx-mem-neg", nil,
			prog(x86.AsmMovRegImm32(x86.EBX, 0x5010),
				x86.AsmMovRegImm32(x86.ECX, 0xffffffe0), // bit -32
				x86.AsmMovMemImm32(0x500c, 0x5a5a5a5a), op), 64)
	}
	// bsf/bsr on zero and nonzero sources.
	for _, src := range []uint32{0, 0x00800100} {
		runBoth(t, "bsf-bsr", nil,
			prog(x86.AsmMovRegImm32(x86.ECX, src),
				[]byte{0x0f, 0xbc, 0xc1},  // bsf eax, ecx
				[]byte{0x0f, 0xbd, 0xd1}), // bsr edx, ecx
			64)
	}
}

// ---- String operations ----

func TestStringEdges(t *testing.T) {
	setup := prog(
		x86.AsmMovRegImm32(x86.ESI, 0x5100),
		x86.AsmMovRegImm32(x86.EDI, 0x5200),
		x86.AsmMovRegImm32(x86.EAX, 0x61626364),
		x86.AsmMovRegImm32(x86.ECX, 0),
		[]byte{0xf3, 0xa4}, // rep movsb with ecx=0: no iterations
	)
	runBoth(t, "rep-zero", nil, setup, 64)

	// DF set: every string op walks down.
	down := prog(
		x86.AsmMovRegImm32(x86.ESI, 0x5100),
		x86.AsmMovRegImm32(x86.EDI, 0x5200),
		x86.AsmMovRegImm32(x86.EAX, 0x61626364),
		x86.AsmMovRegImm32(x86.ECX, 5),
		[]byte{0xfd},             // std
		[]byte{0xf3, 0xa5},       // rep movsd
		x86.AsmMovRegImm32(x86.ECX, 5),
		[]byte{0xf3, 0xaa},       // rep stosb
		x86.AsmMovRegImm32(x86.ECX, 5),
		[]byte{0xf3, 0xac},       // rep lodsb
	)
	runBoth(t, "string-down", nil, down, 64)

	// repne scasb finding a match mid-buffer vs. exhausting the count;
	// repe cmpsb diverging mid-buffer.
	scan := prog(
		x86.AsmMovMemImm32(0x5200, 0x00414141), // "AAA\0"
		x86.AsmMovRegImm32(x86.EDI, 0x5200),
		x86.AsmMovRegImm32(x86.EAX, 0),
		x86.AsmMovRegImm32(x86.ECX, 8),
		[]byte{0xf2, 0xae}, // repne scasb: stops at the NUL
		x86.AsmMovRegImm32(x86.EDI, 0x5200),
		x86.AsmMovRegImm32(x86.ESI, 0x5204),
		x86.AsmMovRegImm32(x86.ECX, 4),
		[]byte{0xf3, 0xa6}, // repe cmpsb: mismatch immediately
	)
	runBoth(t, "string-scan", nil, scan, 64)

	// A string iteration that faults mid-rep commits the completed
	// iterations (ESI/EDI/ECX show the progress).
	img := machine.BaselineImage()
	img.Write(machine.PTBase+0x53*4, 0, 4) // page 0x53000 not present
	faulting := prog(
		x86.AsmMovRegImm32(x86.EDI, 0x52ffc),
		x86.AsmMovRegImm32(x86.EAX, 0x2a),
		x86.AsmMovRegImm32(x86.ECX, 16),
		[]byte{0xf3, 0xaa}, // rep stosb runs off the mapped page
	)
	expectVector(t, "rep-fault", img, faulting, int(x86.ExcPF))
}

// TestRepTimeout: a rep count past the interpreter's iteration budget ends
// the run with a timeout event instead of looping forever. Lento-only: the
// event contract is already pinned differentially elsewhere, and fidelis
// takes orders of magnitude longer to burn 4M iterations.
func TestRepTimeout(t *testing.T) {
	p := prog(
		x86.AsmMovRegImm32(x86.ESI, 0x5000),
		x86.AsmMovRegImm32(x86.ECX, 0x500000), // > repBudget (1<<22)
		[]byte{0xf3, 0xac}, // rep lodsb (reads only: page tables survive)
	)
	r := harness.Run(harness.LentoFactory(), nil, p, 64)
	if len(r.Events) == 0 || r.Events[len(r.Events)-1].Kind != emu.EventTimeout {
		t.Errorf("events %v, want terminal timeout", r.Events)
	}
}

// ---- Control flow ----

func TestFlowEdges(t *testing.T) {
	// jecxz taken and not taken; loop family with counts that terminate.
	runBothDefault(t, "jecxz-taken",
		prog(x86.AsmMovRegImm32(x86.ECX, 0),
			[]byte{0xe3, 0x01, 0xf4})) // jecxz +1 over a hlt
	runBothDefault(t, "jecxz-not",
		prog(x86.AsmMovRegImm32(x86.ECX, 1),
			[]byte{0xe3, 0x01, 0x90}))
	// loop: decrement until zero. loope/loopne with ZF play.
	runBothDefault(t, "loop",
		prog(x86.AsmMovRegImm32(x86.ECX, 3),
			[]byte{0x90},        // target
			[]byte{0xe2, 0xfd})) // loop -3
	runBothDefault(t, "loopne",
		prog(x86.AsmMovRegImm32(x86.ECX, 5),
			x86.AsmMovRegImm32(x86.EAX, 3),
			[]byte{0x48},        // dec eax (sets ZF when 0)
			[]byte{0xe0, 0xfd})) // loopne -3
	runBothDefault(t, "loope",
		prog(x86.AsmMovRegImm32(x86.ECX, 5),
			[]byte{0x31, 0xc0},  // xor eax, eax: ZF set
			[]byte{0xe1, 0xfe})) // loope -2 (spins until ecx hits 0)

	// call/ret through a register target, ret imm16.
	runBothDefault(t, "call-ret",
		prog([]byte{0xe8, 0x01, 0x00, 0x00, 0x00}, // call over the hlt to ret
			[]byte{0xf4},                          // executed after the ret
			[]byte{0xc3}))                         // ret
	runBothDefault(t, "call-rm",
		prog(x86.AsmMovRegImm32(x86.EAX, machine.CodeBase+8),
			[]byte{0xff, 0xd0}, // call eax -> the trailing hlt
			[]byte{0x90}))
	runBothDefault(t, "ret-imm",
		prog(x86.AsmPushImm32(machine.CodeBase+9),
			[]byte{0xc2, 0x08, 0x00}, // ret 8 -> the trailing hlt
			[]byte{0x90}))
	// jmp through a register.
	runBothDefault(t, "jmp-rm",
		prog(x86.AsmMovRegImm32(x86.EAX, machine.CodeBase+7),
			[]byte{0xff, 0xe0}))
}

func runBothDefault(t *testing.T, name string, p []byte) *harness.Result {
	t.Helper()
	return runBoth(t, name, nil, p, 64)
}

func TestIret(t *testing.T) {
	// Hand-built frame: EIP, CS, EFLAGS pushed in reverse, then iret
	// resumes past the hlt it jumps over.
	p := prog(
		x86.AsmPushImm32(0x8d7),             // EFLAGS image
		x86.AsmPushImm32(machine.SelCode),   // CS
		x86.AsmPushImm32(machine.CodeBase+17), // EIP: the trailing hlt
		[]byte{0xcf}, // iret
		[]byte{0xf4}, // skipped
	)
	r := runBoth(t, "iret", nil, p, 64)
	if v := lastVector(r); v != -1 {
		t.Errorf("iret faulted with vector %d", v)
	}

	// iret to a bad CS selector faults after the frame is consumed.
	expectVector(t, "iret-badcs", nil,
		prog(x86.AsmPushImm32(0x8d7),
			x86.AsmPushImm32(machine.GDTEntries*8), // out of GDT
			x86.AsmPushImm32(machine.CodeBase),
			[]byte{0xcf}),
		int(x86.ExcGP))
	// iret to a data selector: CS must be code.
	expectVector(t, "iret-datacs", nil,
		prog(x86.AsmPushImm32(0x8d7),
			x86.AsmPushImm32(machine.SelData),
			x86.AsmPushImm32(machine.CodeBase),
			[]byte{0xcf}),
		int(x86.ExcGP))
}

// ---- Stack frame instructions ----

func TestEnterLeave(t *testing.T) {
	// enter with nesting levels 0, 1, and 3 (the level-loop copies frame
	// pointers), then leave unwinds.
	for _, c := range [][]byte{
		{0xc8, 0x10, 0x00, 0x00}, // enter 16, 0
		{0xc8, 0x10, 0x00, 0x01}, // enter 16, 1
		{0xc8, 0x08, 0x00, 0x03}, // enter 8, 3
	} {
		runBothDefault(t, "enter",
			prog(x86.AsmMovRegImm32(x86.EBP, machine.StackTop-0x40),
				c, []byte{0xc9})) // leave
	}
}

// ---- System instruction edges ----

func TestControlRegisterFaults(t *testing.T) {
	movToCR0 := func(v uint32) []byte {
		return append(x86.AsmMovRegImm32(x86.EAX, v), x86.AsmMovCRReg(0, x86.EAX)...)
	}
	// PG without PE.
	expectVector(t, "cr0-pg-no-pe", nil, prog(movToCR0(0x80000000)), int(x86.ExcGP))
	// NW without CD.
	expectVector(t, "cr0-nw-no-cd", nil, prog(movToCR0(0x20000001)), int(x86.ExcGP))
	// CR4 reserved bit.
	expectVector(t, "cr4-reserved", nil,
		prog(x86.AsmMovRegImm32(x86.EAX, 0x10000), x86.AsmMovCRReg(4, x86.EAX)), int(x86.ExcGP))
	// cr1 is not a register, either direction.
	expectVector(t, "cr1-write", nil, prog([]byte{0x0f, 0x22, 0xc8}), int(x86.ExcUD))
	expectVector(t, "cr1-read", nil, prog([]byte{0x0f, 0x20, 0xc8}), int(x86.ExcUD))
	// Valid CR2/CR3/CR4 writes and read-back.
	runBothDefault(t, "cr-roundtrip",
		prog(x86.AsmMovRegImm32(x86.EAX, 0xdeadb000),
			x86.AsmMovCRReg(2, x86.EAX),
			x86.AsmMovRegImm32(x86.EAX, machine.PDBase),
			x86.AsmMovCRReg(3, x86.EAX),
			x86.AsmMovRegImm32(x86.EAX, 0x10),
			x86.AsmMovCRReg(4, x86.EAX),
			x86.AsmMovRegCR(x86.EBX, 2),
			x86.AsmMovRegCR(x86.ECX, 3),
			x86.AsmMovRegCR(x86.EDX, 4),
			x86.AsmMovRegCR(x86.ESI, 0)))
}

func TestMSRs(t *testing.T) {
	// Unknown MSR index faults both directions.
	expectVector(t, "rdmsr-bad", nil,
		prog(x86.AsmMovRegImm32(x86.ECX, 0x12345), []byte{0x0f, 0x32}), int(x86.ExcGP))
	expectVector(t, "wrmsr-bad", nil,
		prog(x86.AsmMovRegImm32(x86.ECX, 0x12345), x86.AsmWrmsr()), int(x86.ExcGP))
	// TSC write is visible to rdtsc.
	runBothDefault(t, "msr-roundtrip",
		prog(x86.AsmMovRegImm32(x86.ECX, 0x10),
			x86.AsmMovRegImm32(x86.EAX, 0x11223344),
			x86.AsmMovRegImm32(x86.EDX, 0x55667788),
			x86.AsmWrmsr(),
			[]byte{0x0f, 0x31},  // rdtsc
			x86.AsmMovRegImm32(x86.ECX, 0x10),
			[]byte{0x0f, 0x32})) // rdmsr
}

func TestCpuidLeaves(t *testing.T) {
	for _, leaf := range []uint32{0, 1, 7} {
		runBothDefault(t, "cpuid",
			prog(x86.AsmMovRegImm32(x86.EAX, leaf), []byte{0x0f, 0xa2}))
	}
}

func TestDescriptorTableInstrs(t *testing.T) {
	// sgdt/sidt store the live bases; lgdt/lidt reload them from the stored
	// image; lmsw/smsw/clts round-trip CR0 bits.
	runBothDefault(t, "dt-roundtrip",
		prog([]byte{0x0f, 0x01, 0x05, 0x00, 0x51, 0x00, 0x00}, // sgdt [0x5100]
			[]byte{0x0f, 0x01, 0x0d, 0x10, 0x51, 0x00, 0x00},  // sidt [0x5110]
			x86.AsmLGDT(0x5100),
			x86.AsmLIDT(0x5110),
			x86.AsmMovRegImm32(x86.EAX, 0xb),
			[]byte{0x0f, 0x01, 0xf0},                          // lmsw ax
			[]byte{0x0f, 0x01, 0xe3},                          // smsw ebx
			[]byte{0x0f, 0x06},                                // clts
			[]byte{0x0f, 0x01, 0x3d, 0x00, 0x50, 0x00, 0x00})) // invlpg [0x5000]
}

func TestVerrVerw(t *testing.T) {
	// One program probes every verify path: null, TI, out-of-limit, the
	// flat data and code selectors, then verw against read-only data.
	img := descImage(0, 0xfffff, uint16(x86.AttrP|x86.AttrS|x86.AttrG|x86.AttrDB)) // RO data
	probe := func(sel uint16, verw bool) []byte {
		op := []byte{0x0f, 0x00, 0xe0} // verr ax
		if verw {
			op = []byte{0x0f, 0x00, 0xe8} // verw ax
		}
		return append(x86.AsmMovRegImm32(x86.EAX, uint32(sel)), op...)
	}
	runBoth(t, "verr-verw", img,
		prog(probe(0, false),
			probe(sel11|4, false),                // TI set
			probe(machine.GDTEntries*8, false),   // out of limit
			probe(machine.SelData, false),        // readable data
			probe(machine.SelData, true),         // writable data
			probe(machine.SelCode, false),        // readable code
			probe(machine.SelCode, true),         // code never writable
			probe(sel11, true),                   // RO data: verw fails
			probe(sel11, false)),                 // but verr succeeds
		64)
}

func TestSegmentRegisterMoves(t *testing.T) {
	// mov cs, r is undefined; segment register fields 6/7 are undefined.
	expectVector(t, "mov-cs", nil, prog([]byte{0x8e, 0xc8}), int(x86.ExcUD))
	expectVector(t, "mov-sreg6", nil, prog([]byte{0x8e, 0xf0}), int(x86.ExcUD))
	expectVector(t, "mov-rm-sreg7", nil, prog([]byte{0x8c, 0xf8}), int(x86.ExcUD))
	// Store and reload a data segment through memory, plus far loads.
	runBothDefault(t, "sreg-roundtrip",
		prog([]byte{0x8c, 0x1d, 0x00, 0x51, 0x00, 0x00}, // mov [0x5100], ds
			[]byte{0x8e, 0x05, 0x00, 0x51, 0x00, 0x00},  // mov es, [0x5100]
			x86.AsmMovMemImm32(0x5200, 0x00005300),      // far pointer offset
			x86.AsmMovMemImm16(0x5204, machine.SelData), // selector
			[]byte{0xc4, 0x0d, 0x00, 0x52, 0x00, 0x00},  // les ecx, [0x5200]
			[]byte{0xc5, 0x15, 0x00, 0x52, 0x00, 0x00},  // lds edx, [0x5200]
			[]byte{0x0f, 0xb4, 0x1d, 0x00, 0x52, 0x00, 0x00},  // lfs ebx, [0x5200]
			[]byte{0x0f, 0xb5, 0x35, 0x00, 0x52, 0x00, 0x00})) // lgs esi, [0x5200]
	// lss with a valid stack selector.
	runBothDefault(t, "lss",
		prog(x86.AsmMovMemImm32(0x5200, machine.StackTop-0x10),
			x86.AsmMovMemImm16(0x5204, machine.SelSS),
			[]byte{0x0f, 0xb2, 0x25, 0x00, 0x52, 0x00, 0x00})) // lss esp, [0x5200]
	// Far load with a bad selector leaves the register untouched.
	expectVector(t, "les-bad", nil,
		prog(x86.AsmMovMemImm32(0x5200, 0x1234),
			x86.AsmMovMemImm16(0x5204, machine.GDTEntries*8),
			[]byte{0xc4, 0x0d, 0x00, 0x52, 0x00, 0x00}),
		int(x86.ExcGP))
}

// ---- Decode edges ----

func TestDecodeFaults(t *testing.T) {
	// 15 prefix bytes push the instruction past the architectural length
	// limit; the 15-byte fetch window truncates mid-decode, which the
	// reference semantics map to #UD.
	long := make([]byte, 0, 17)
	for i := 0; i < 15; i++ {
		long = append(long, 0x66)
	}
	long = append(long, 0x90)
	expectVector(t, "too-long", nil, prog(long), int(x86.ExcUD))

	// Unknown opcode.
	expectVector(t, "bad-opcode", nil, prog([]byte{0xf1}), int(x86.ExcUD))

	// lock on a non-lockable instruction, on a register form, and valid on
	// a memory read-modify-write.
	expectVector(t, "lock-nop", nil, prog([]byte{0xf0, 0x90}), int(x86.ExcUD))
	expectVector(t, "lock-reg", nil, prog([]byte{0xf0, 0x01, 0xc8}), int(x86.ExcUD))
	runBothDefault(t, "lock-mem",
		prog(x86.AsmMovRegImm32(x86.EBX, 0x5000),
			[]byte{0xf0, 0x01, 0x03})) // lock add [ebx], eax

	// An instruction whose bytes run into a not-present page: the fetch
	// fault surfaces once decode reports truncation.
	img := machine.BaselineImage()
	img.Write(machine.PTBase+0x101*4, 0, 4) // page after the code page
	p := make([]byte, 0xffe)
	for i := range p {
		p[i] = 0x90
	}
	p[0] = 0xe9 // jmp rel32 to 0xffd (one byte before the page end)
	rel := 0xffd - 5
	p[1], p[2], p[3], p[4] = byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24)
	p[0xffd] = 0xc7 // mov rm32, imm32 truncated at the page boundary
	expectVector(t, "fetch-fault", img, p, int(x86.ExcPF))
}

// ---- Addressing-mode coverage ----

func TestAddressingModes(t *testing.T) {
	p := prog(
		x86.AsmMovRegImm32(x86.EBX, 0x5000),
		x86.AsmMovRegImm32(x86.ECX, 0x10),
		x86.AsmMovRegImm32(x86.EBP, 0x5100),
		[]byte{0x89, 0x03},                         // [ebx]
		[]byte{0x89, 0x43, 0x08},                   // [ebx+8]
		[]byte{0x89, 0x83, 0x00, 0x01, 0x00, 0x00}, // [ebx+0x100]
		[]byte{0x89, 0x45, 0x04},                   // [ebp+4] (SS default)
		[]byte{0x89, 0x04, 0x0b},                   // [ebx+ecx] (SIB)
		[]byte{0x89, 0x04, 0x4b},                   // [ebx+ecx*2]
		[]byte{0x89, 0x04, 0x8b},                   // [ebx+ecx*4]
		[]byte{0x89, 0x04, 0xcb},                   // [ebx+ecx*8]
		[]byte{0x89, 0x04, 0x25, 0x00, 0x52, 0x00, 0x00}, // [disp32] via SIB base=5
		[]byte{0x89, 0x04, 0x24},                   // [esp] (SIB base=4 -> SS)
		[]byte{0x89, 0x44, 0x8d, 0x20},             // [ebp+ecx*4+0x20] (SS)
		[]byte{0x89, 0x05, 0x30, 0x52, 0x00, 0x00}, // [disp32] mod0 rm5
		[]byte{0x64, 0x89, 0x03},                   // fs: override
		[]byte{0x65, 0x8b, 0x03},                   // gs: override
		[]byte{0x36, 0x89, 0x03},                   // ss: override
		[]byte{0x3e, 0x89, 0x03},                   // ds: override
		[]byte{0x2e, 0x8b, 0x03},                   // cs: override (read)
	)
	runBoth(t, "addr-modes", nil, p, 96)
}

// TestMemoryCrossPage drives the split-access path: a dword written across
// a page boundary lands byte-correct on both frames.
func TestMemoryCrossPage(t *testing.T) {
	runBothDefault(t, "cross-write",
		prog(x86.AsmMovRegImm32(x86.EAX, 0xa1b2c3d4),
			x86.AsmMovRegImm32(x86.EBX, 0x5ffe),
			[]byte{0x89, 0x03},  // write straddling 0x5fff/0x6000
			[]byte{0x8b, 0x0b})) // read it back

	// Misaligned 16-bit operand-size access across the boundary.
	runBothDefault(t, "cross-16",
		prog(x86.AsmMovRegImm32(x86.EBX, 0x5fff),
			[]byte{0x66, 0xc7, 0x03, 0x34, 0x12}, // mov word [ebx], 0x1234
			[]byte{0x66, 0x8b, 0x0b}))
}

// TestEmulatorIdentity covers the emu.Emulator surface directly.
func TestEmulatorIdentity(t *testing.T) {
	m := machine.NewBaseline(machine.BaselineImage())
	e := lento.New(m)
	if e.Name() != "lento" {
		t.Errorf("Name() = %q", e.Name())
	}
	if e.Machine() != m {
		t.Error("Machine() does not return the wrapped machine")
	}
}

// TestAsciiAdjust exercises the successful aam/aad paths (the matrix and
// TestDivideFaults only reach the #DE branch).
func TestAsciiAdjust(t *testing.T) {
	runBothDefault(t, "aam-aad",
		prog(x86.AsmMovRegImm32(x86.EAX, 123),
			[]byte{0xd4, 0x0a},  // aam 10
			[]byte{0xd5, 0x0a})) // aad 10
	// Non-decimal base.
	runBothDefault(t, "aam-base7",
		prog(x86.AsmMovRegImm32(x86.EAX, 0x55),
			[]byte{0xd4, 0x07}))
}

// TestMoffsOverride: the direct-offset mov forms with a segment override.
func TestMoffsOverride(t *testing.T) {
	runBothDefault(t, "moffs-override",
		prog(x86.AsmMovRegImm32(x86.EAX, 0x99aabbcc),
			[]byte{0x64, 0xa3, 0x00, 0x51, 0x00, 0x00},  // mov fs:[0x5100], eax
			[]byte{0x26, 0xa1, 0x00, 0x51, 0x00, 0x00},  // mov eax, es:[0x5100]
			[]byte{0x65, 0xa2, 0x08, 0x51, 0x00, 0x00},  // mov gs:[0x5108], al
			[]byte{0x36, 0xa0, 0x08, 0x51, 0x00, 0x00})) // mov al, ss:[0x5108]
}

// TestSarSaturate: arithmetic shifts whose masked count still reaches the
// lane width saturate to a sign fill.
func TestSarSaturate(t *testing.T) {
	runBothDefault(t, "sar-saturate",
		prog(x86.AsmMovRegImm32(x86.EAX, 0x8000cc81),
			[]byte{0xc0, 0xf8, 0x09},        // sar al, 9 (>= 8)
			[]byte{0x66, 0xc1, 0xf8, 0x1f})) // sar ax, 31 (>= 16)
}

// ---- Flag-image instructions ----

func TestFlagImages(t *testing.T) {
	runBothDefault(t, "pushf-popf-16",
		prog(x86.AsmPushImm32(0xed5),
			x86.AsmPopf(),
			[]byte{0x66, 0x9c}, // pushfw
			[]byte{0x66, 0x9d}, // popfw
			[]byte{0x9c},       // pushfd
			[]byte{0x9d}))      // popfd
	runBothDefault(t, "sahf-lahf",
		prog(x86.AsmMovRegImm32(x86.EAX, 0xd500),
			[]byte{0x9e},  // sahf
			[]byte{0x9f})) // lahf
	// AC and ID are writable only through the 32-bit image.
	runBothDefault(t, "popf-ac-id",
		prog(x86.AsmPushImm32(1<<18|1<<21|0x2),
			x86.AsmPopf(),
			[]byte{0x9c}))
}
