// Package lento is the third reference implementation: a naive,
// direct-decode interpreter in the sim86 style. Each step fetches raw bytes,
// decodes them through the shared x86 tables, and executes the instruction
// in straight-line Go — no IR, no translation cache, no lowering.
//
// Independence is the point: lento shares no execution machinery with
// fidelis (the IR evaluator) or celer (the closure lowering), so a bug in
// either of those stacks cannot hide in lento too. It may import only the
// architecture definition (internal/x86), the guest state container
// (internal/machine), and the emulator interface (internal/emu) — DESIGN.md
// §13 records the constraint. With three independent implementations the
// campaign's differential oracle upgrades from "these two differ" to a
// majority vote that pinpoints which implementation is wrong.
//
// Fidelity target: lento implements the architecture the way a careful
// interpreter does — full segment checks, hardware-ordered (atomic)
// instruction commits, accessed-bit write-back, #GP on unknown MSRs, alias
// encodings accepted — with the Bochs-like policy for undefined status
// flags and far-load fetch order. Its observable behavior (event stream and
// final snapshot) must equal fidelis's on every program the harness runs;
// TestLentoDifferential enforces that over the whole 672-handler matrix.
package lento

import (
	"pokeemu/internal/emu"
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// repBudget bounds one instruction's string-repeat iterations.
const repBudget = 1 << 22

// Emulator is the direct-decode interpreter.
type Emulator struct {
	m *machine.Machine

	// Decoded counts instructions executed.
	Decoded int64
}

// New wraps a machine with the interpreter.
func New(m *machine.Machine) *Emulator { return &Emulator{m: m} }

// Name implements emu.Emulator.
func (e *Emulator) Name() string { return "lento" }

// Machine implements emu.Emulator.
func (e *Emulator) Machine() *machine.Machine { return e.m }

// fault is an exception raised mid-instruction. Execution stops where the
// fault occurred; effects already committed stay committed, exactly like the
// in-order IR evaluation fidelis performs.
type fault struct {
	vec    uint8
	err    uint32
	hasErr bool
}

// exec carries per-instruction interpretation state.
type exec struct {
	m    *machine.Machine
	inst *x86.Inst
	osz  uint8 // operand size in bits (16 or 32)

	halted  bool // hlt executed
	timeout bool // rep iteration budget exhausted
}

// Step implements emu.Emulator: fetch, decode, execute, deliver.
func (e *Emulator) Step() emu.Event {
	m := e.m
	if m.Halted {
		return emu.Event{Kind: emu.EventHalt}
	}

	code, fexc := m.FetchCode(x86.MaxInstLen)
	inst, derr := x86.Decode(code)
	if derr != nil {
		de := derr.(*x86.DecodeError)
		switch {
		case de.Kind == x86.ErrTruncated && fexc != nil:
			// The decoder ran into the faulting byte.
			return e.deliver(fexc)
		case de.Kind == x86.ErrTooLong:
			return e.deliver(&machine.ExceptionInfo{Vector: x86.ExcGP, HasErr: true})
		default:
			return e.deliver(&machine.ExceptionInfo{Vector: x86.ExcUD})
		}
	}
	e.Decoded++

	x := &exec{m: m, inst: inst, osz: uint8(inst.OpSize)}
	f := x.run()
	switch {
	case x.timeout:
		return emu.Event{Kind: emu.EventTimeout}
	case x.halted:
		m.Halted = true
		return emu.Event{Kind: emu.EventHalt}
	case f != nil:
		return e.deliver(&machine.ExceptionInfo{
			Vector: f.vec, ErrCode: f.err, HasErr: f.hasErr,
		})
	}
	return emu.Event{Kind: emu.EventNone}
}

// deliver pushes the exception frame through the IDT. If delivery itself
// faults at any point, the machine shuts down (triple-fault analogue);
// whatever delivery had already committed stays, matching the in-order
// evaluation of the compiled delivery program.
func (e *Emulator) deliver(exc *machine.ExceptionInfo) emu.Event {
	x := &exec{m: e.m, osz: 32}
	if f := x.deliverThroughIDT(exc); f != nil {
		e.m.Halted = true
		return emu.Event{Kind: emu.EventShutdown, Exception: exc}
	}
	return emu.Event{Kind: emu.EventException, Exception: exc}
}

// deliverThroughIDT performs the IDT dispatch: gate fetch and validation,
// the EFLAGS/CS/EIP (+ error code) pushes, flag clearing, and the CS:EIP
// load. Any fault (including an out-of-range or malformed gate, mapped to
// #DF by the reference semantics) aborts delivery.
func (x *exec) deliverThroughIDT(exc *machine.ExceptionInfo) *fault {
	m := x.m
	df := &fault{vec: x86.ExcDF}

	if uint32(exc.Vector)*8+7 > m.IDTRLimit {
		return df
	}
	gateLin := m.IDTRBase + uint32(exc.Vector)*8
	lo, f := x.readLin(gateLin, 4)
	if f != nil {
		return f
	}
	hi, f := x.readLin(gateLin+4, 4)
	if f != nil {
		return f
	}
	if hi>>15&1 == 0 { // present
		return df
	}
	gtype := hi >> 8 & 0xf
	if gtype != 0xe && gtype != 0xf {
		return df
	}

	if f := x.push32(uint64(x.packEFLAGS())); f != nil {
		return f
	}
	if f := x.push32(uint64(m.Seg[x86.CS].Sel)); f != nil {
		return f
	}
	if f := x.push32(uint64(m.EIP)); f != nil {
		return f
	}
	if exc.HasErr {
		if f := x.push32(uint64(exc.ErrCode)); f != nil {
			return f
		}
	}

	for _, bit := range []uint8{x86.FlagTF, x86.FlagNT, x86.FlagVM, x86.FlagRF} {
		x.setFlag(bit, 0)
	}
	if gtype == 0xe { // interrupt gate clears IF
		x.setFlag(x86.FlagIF, 0)
	}

	sel := uint16(lo >> 16)
	if f := x.loadSegment(x86.CS, sel, true); f != nil {
		return f
	}
	m.EIP = uint32(lo&0xffff | hi&0xffff0000)
	return nil
}

// run executes the decoded instruction, dispatching on the handler name the
// same way the semantics compiler does. It returns the fault to deliver, or
// nil when the instruction completed (EIP already advanced).
func (x *exec) run() *fault {
	in := x.inst
	// LOCK prefix legality: only on the architected read-modify-write forms,
	// and only with a memory destination.
	if in.Lock && (!in.Spec.LockOK || in.IsRegForm() || !in.HasModRM) {
		return &fault{vec: x86.ExcUD}
	}
	name := in.Spec.Name
	if f, ok := x.execALU(name); ok {
		return f
	}
	if f, ok := x.execMovLea(name); ok {
		return f
	}
	if f, ok := x.execStack(name); ok {
		return f
	}
	if f, ok := x.execFlow(name); ok {
		return f
	}
	if f, ok := x.execSystem(name); ok {
		return f
	}
	if f, ok := x.execString(name); ok {
		return f
	}
	if f, ok := x.execBitOps(name); ok {
		return f
	}
	panic("lento: no semantics for handler " + name)
}

// done advances EIP past the instruction; call it only on fault-free paths.
func (x *exec) done() {
	x.m.EIP += uint32(x.inst.Len)
}
