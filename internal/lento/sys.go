package lento

import (
	"pokeemu/internal/machine"
	"pokeemu/internal/x86"
)

// segLoadKind selects the validation rules for a segment load.
type segLoadKind int

const (
	loadData segLoadKind = iota
	loadSS
	loadCS
)

// loadSegment implements the protected-mode segment-register load: selector
// checks, GDT fetch, descriptor parse, privilege/type validation, the
// accessed-bit write-back, and the descriptor-cache update. A fault leaves
// the segment register untouched (only GDT-page A/D bits and the
// accessed-bit store may already have committed).
func (x *exec) loadSegment(seg x86.SegReg, sel uint16, forCS bool) *fault {
	m := x.m
	selMasked := sel & 0xfffc
	gpSel := &fault{vec: x86.ExcGP, err: uint32(selMasked), hasErr: true}

	if selMasked == 0 {
		if seg == x86.SS || forCS {
			// Null SS or CS is a #GP(0).
			return &fault{vec: x86.ExcGP, hasErr: true}
		}
		// A null selector loads an unusable segment.
		m.Seg[seg] = machine.Segment{Sel: sel}
		return nil
	}

	// No local descriptor table in this machine: TI set is a #GP.
	if sel>>2&1 == 1 {
		return gpSel
	}

	// Descriptor must lie within the GDT limit.
	if uint32(sel&0xfff8)+7 > m.GDTRLimit {
		return gpSel
	}

	descLin := m.GDTRBase + uint32(sel&0xfff8)
	lo64, f := x.readLin(descLin, 4)
	if f != nil {
		return f
	}
	hi64, f := x.readLin(descLin+4, 4)
	if f != nil {
		return f
	}
	lo, hi := uint32(lo64), uint32(hi64)

	kind := loadData
	if seg == x86.SS {
		kind = loadSS
	} else if forCS {
		kind = loadCS
	}
	base, limit, attr, f := x.parseDescriptor(lo, hi, sel, kind)
	if f != nil {
		return f
	}

	// Accessed bit write-back: only when clear.
	if hi>>8&1 == 0 {
		wb, f := x.translateLin(descLin+4, 4, true)
		if f != nil {
			return f
		}
		x.memStore(wb, uint64(hi|0x100))
	}

	m.Seg[seg].Sel = sel
	m.Seg[seg].Base = base
	m.Seg[seg].Limit = limit
	m.Seg[seg].Attr = attr
	return nil
}

// parseDescriptor validates a GDT descriptor and computes the cache fields
// (attr already 16 bits, with the accessed bit set as caches record it).
func (x *exec) parseDescriptor(lo, hi uint32, sel uint16, kind segLoadKind) (
	base, limit uint32, attr uint16, f *fault) {

	selMasked := sel & 0xfffc
	gpSel := &fault{vec: x86.ExcGP, err: uint32(selMasked), hasErr: true}

	rpl := sel & 3
	dpl := uint16(hi >> 13 & 3)
	if hi>>12&1 == 0 { // system descriptor
		return 0, 0, 0, gpSel
	}

	if kind == loadSS {
		if rpl != 0 || dpl != 0 {
			return 0, 0, 0, gpSel
		}
	}

	// Type nibble: bit0 accessed, bit1 W/R, bit2 E/C, bit3 code.
	typ := hi >> 8 & 0xf
	isCode := typ&8 != 0
	rw := typ&2 != 0
	conforming := isCode && typ&4 != 0
	valid := true
	switch kind {
	case loadSS:
		valid = !isCode && rw
	case loadCS:
		valid = isCode
	default:
		valid = !isCode || rw // data, or readable code
	}
	if !valid {
		return 0, 0, 0, gpSel
	}
	if kind == loadCS && !conforming && dpl != 0 {
		// Non-conforming code requires DPL == CPL (0).
		return 0, 0, 0, gpSel
	}
	if kind == loadData && !conforming && dpl < rpl {
		// DPL ≥ RPL for data and non-conforming code.
		return 0, 0, 0, gpSel
	}

	raw := lo&0xffff | hi&0xf0000
	if hi>>23&1 == 1 { // granularity
		limit = raw<<12 | 0xfff
	} else {
		limit = raw
	}

	if hi>>15&1 == 0 { // present
		vec := uint8(x86.ExcNP)
		if kind == loadSS {
			vec = x86.ExcSS
		}
		return 0, 0, 0, &fault{vec: vec, err: uint32(selMasked), hasErr: true}
	}

	base = lo>>16 | hi&0xff<<16 | hi&0xff000000
	attr32 := hi>>8&0xff | hi>>20&0xf<<8
	attr32 |= 1 // caches record the segment accessed
	return base, limit, uint16(attr32), nil
}

// segOps maps the implicit-segment handler-name suffixes.
var segOps = map[string]x86.SegReg{
	"es": x86.ES, "cs": x86.CS, "ss": x86.SS,
	"ds": x86.DS, "fs": x86.FS, "gs": x86.GS,
}

// execSystem interprets segment-register loads/stores, far pointer loads,
// control registers, MSRs, descriptor-table instructions, and cpuid.
func (x *exec) execSystem(name string) (*fault, bool) {
	m := x.m
	switch name {
	case "mov_sreg_rm16":
		sr := x86.SegReg(x.inst.RegField())
		if sr == x86.CS || sr > x86.GS {
			return &fault{vec: x86.ExcUD}, true
		}
		src, f := x.resolveRM(16, false)
		if f != nil {
			return f, true
		}
		if f := x.loadSegment(sr, uint16(x.rmRead(src)), false); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "mov_rmv_sreg":
		sr := x86.SegReg(x.inst.RegField())
		if sr > x86.GS {
			return &fault{vec: x86.ExcUD}, true
		}
		dst, f := x.resolveRM(16, true)
		if f != nil {
			return f, true
		}
		x.rmWrite(dst, uint64(m.Seg[sr].Sel))
		x.done()
		return nil, true
	case "push_es", "push_cs", "push_ss", "push_ds", "push_fs", "push_gs":
		sr := segOps[name[5:]]
		if f := x.push(uint64(m.Seg[sr].Sel)); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "pop_es", "pop_ss", "pop_ds", "pop_fs", "pop_gs":
		sr := segOps[name[4:]]
		v, f := x.stackRead(0, x.osz/8)
		if f != nil {
			return f, true
		}
		if f := x.loadSegment(sr, uint16(v), false); f != nil {
			return f, true
		}
		m.GPR[x86.ESP] += uint32(x.osz / 8)
		x.done()
		return nil, true
	case "les", "lds", "lfs", "lgs", "lss":
		return x.farLoad(segOps[name[1:]]), true
	case "mov_cr_r":
		return x.movToCR(), true
	case "mov_r_cr":
		cr := x.inst.RegField()
		if cr != 0 && cr != 2 && cr != 3 && cr != 4 {
			return &fault{vec: x86.ExcUD}, true
		}
		var v uint32
		switch cr {
		case 0:
			v = m.CR0
		case 2:
			v = m.CR2
		case 3:
			v = m.CR3
		case 4:
			v = m.CR4
		}
		x.gprWrite(x.inst.RM(), 32, uint64(v))
		x.done()
		return nil, true
	case "rdmsr":
		return x.rdwrMSR(false), true
	case "wrmsr":
		return x.rdwrMSR(true), true
	case "rdtsc":
		tsc := m.MSR[0]
		x.gprWrite(0, 32, tsc&0xffffffff)
		x.gprWrite(2, 32, tsc>>32)
		x.done()
		return nil, true
	case "cpuid":
		x.cpuid()
		return nil, true
	case "lgdt", "lidt":
		seg, off := x.effAddr()
		limit, f := x.readMem(seg, off, 2, false)
		if f != nil {
			return f, true
		}
		base, f := x.readMem(seg, off+2, 4, false)
		if f != nil {
			return f, true
		}
		if name == "lgdt" {
			m.GDTRLimit = uint32(limit)
			m.GDTRBase = uint32(base)
		} else {
			m.IDTRLimit = uint32(limit)
			m.IDTRBase = uint32(base)
		}
		x.done()
		return nil, true
	case "sgdt", "sidt":
		seg, off := x.effAddr()
		var lim, base uint32
		if name == "sgdt" {
			lim, base = m.GDTRLimit, m.GDTRBase
		} else {
			lim, base = m.IDTRLimit, m.IDTRBase
		}
		ref, f := x.translate(seg, off, 6, true, false)
		if f != nil {
			return f, true
		}
		for i := uint8(0); i < 2; i++ {
			x.m.Mem.Write8(x.byteAddr(ref, i), byte(lim>>(8*i)))
		}
		for i := uint8(0); i < 4; i++ {
			x.m.Mem.Write8(x.byteAddr(ref, 2+i), byte(base>>(8*i)))
		}
		x.done()
		return nil, true
	case "smsw":
		dst, f := x.resolveRM(x.osz, true)
		if f != nil {
			return f, true
		}
		x.rmWrite(dst, uint64(m.CR0)&maskW(x.osz))
		x.done()
		return nil, true
	case "lmsw":
		src, f := x.resolveRM(16, false)
		if f != nil {
			return f, true
		}
		v := uint32(x.rmRead(src))
		// lmsw can set but not clear PE; only the low 4 bits are written.
		newPE := m.CR0&1 | v&1
		m.CR0 = m.CR0&^0xf | v&0xe | newPE
		x.done()
		return nil, true
	case "invlpg":
		// No TLB is modeled; the effective address is computed but not
		// dereferenced, exactly like hardware.
		x.effAddr()
		x.done()
		return nil, true
	case "clts":
		m.CR0 &^= 1 << x86.CR0TS
		x.done()
		return nil, true
	case "verr", "verw":
		return x.verify(name == "verw"), true
	}
	return nil, false
}

// verify implements verr/verw: probe whether a selector would be readable
// (or writable) at the current privilege level, reporting through ZF and
// never faulting on a bad selector — though the descriptor read itself can
// still page-fault.
func (x *exec) verify(forWrite bool) *fault {
	m := x.m
	src, f := x.resolveRM(16, false)
	if f != nil {
		return f
	}
	sel := uint16(x.rmRead(src))

	setZF := func(ok bool) *fault {
		x.setFlagB(x86.FlagZF, ok)
		x.done()
		return nil
	}

	// Null selector, LDT reference, or out-of-limit descriptor: not valid.
	if sel&0xfffc == 0 || sel>>2&1 == 1 {
		return setZF(false)
	}
	if uint32(sel&0xfff8)+7 > m.GDTRLimit {
		return setZF(false)
	}

	descLin := m.GDTRBase + uint32(sel&0xfff8)
	hi64, f := x.readLin(descLin+4, 4)
	if f != nil {
		return f
	}
	hi := uint32(hi64)

	// Must be a present code/data descriptor.
	if hi>>12&1 == 0 || hi>>15&1 == 0 {
		return setZF(false)
	}
	isCode := hi>>11&1 == 1
	rw := hi>>9&1 == 1
	conform := hi>>10&1 == 1
	dpl := uint16(hi >> 13 & 3)
	rpl := sel & 3
	// Privilege applies to data and non-conforming code: DPL ≥ RPL (CPL=0).
	if (!isCode || !conform) && dpl < rpl {
		return setZF(false)
	}
	if forWrite {
		// Writable data only.
		if isCode || !rw {
			return setZF(false)
		}
	} else {
		// Data always readable; code needs the readable bit.
		if isCode && !rw {
			return setZF(false)
		}
	}
	return setZF(true)
}

// farLoad implements les/lds/lfs/lgs/lss: load a full pointer (offset +
// selector) from memory, then the segment register, then the GPR. The
// Bochs-order fetch reads the selector word first.
func (x *exec) farLoad(sr x86.SegReg) *fault {
	seg, off := x.effAddr()
	offBytes := x.osz / 8
	selV, f := x.readMem(seg, off+uint32(offBytes), 2, false)
	if f != nil {
		return f
	}
	offV, f := x.readMem(seg, off, offBytes, false)
	if f != nil {
		return f
	}
	if f := x.loadSegment(sr, uint16(selV), false); f != nil {
		return f
	}
	x.gprWrite(x.inst.RegField(), x.osz, offV)
	x.done()
	return nil
}

// movToCR implements mov %reg, %crN with the architectural consistency
// checks.
func (x *exec) movToCR() *fault {
	m := x.m
	cr := x.inst.RegField()
	v := uint32(x.gprRead(x.inst.RM(), 32))
	gp := &fault{vec: x86.ExcGP, hasErr: true}
	switch cr {
	case 0:
		// PG requires PE; NW without CD is invalid.
		if v>>x86.CR0PG&1 == 1 && v>>x86.CR0PE&1 == 0 {
			return gp
		}
		if v>>x86.CR0NW&1 == 1 && v>>x86.CR0CD&1 == 0 {
			return gp
		}
		m.CR0 = v
	case 2:
		m.CR2 = v
	case 3:
		m.CR3 = v & 0xfffff018
	case 4:
		// Reserved CR4 bits must be zero.
		if v&^uint32(0x1ff) != 0 {
			return gp
		}
		m.CR4 = v
	default:
		return &fault{vec: x86.ExcUD}
	}
	x.done()
	return nil
}

// rdwrMSR implements rdmsr/wrmsr with the per-index dispatch; an
// unrecognized index raises #GP(0).
func (x *exec) rdwrMSR(write bool) *fault {
	m := x.m
	slot := x86.MSRSlot(m.GPR[x86.ECX])
	if slot < 0 {
		return &fault{vec: x86.ExcGP, hasErr: true}
	}
	if write {
		m.MSR[slot] = uint64(m.GPR[x86.EDX])<<32 | uint64(m.GPR[x86.EAX])
	} else {
		v := m.MSR[slot]
		x.gprWrite(0, 32, v&0xffffffff)
		x.gprWrite(2, 32, v>>32)
	}
	x.done()
	return nil
}

// cpuid returns fixed, implementation-independent values.
func (x *exec) cpuid() {
	m := x.m
	switch m.GPR[x86.EAX] {
	case 0:
		m.GPR[x86.EAX] = 1
		m.GPR[x86.EBX] = 0x656b6f50 // "Poke"
		m.GPR[x86.EDX] = 0x554d4545 // "EEMU"
		m.GPR[x86.ECX] = 0x20555043 // "CPU "
	case 1:
		m.GPR[x86.EAX] = 0x00000611
		m.GPR[x86.EBX] = 0
		m.GPR[x86.ECX] = 0
		m.GPR[x86.EDX] = 0x00000011 // FPU-less, PSE+TSC
	default:
		m.GPR[x86.EAX] = 0
		m.GPR[x86.EBX] = 0
		m.GPR[x86.ECX] = 0
		m.GPR[x86.EDX] = 0
	}
	x.done()
}
