package lento_test

import (
	"encoding/binary"
	"testing"

	"pokeemu/internal/expr"
	"pokeemu/internal/harness"
	"pokeemu/internal/solver"
	"pokeemu/internal/x86"
)

// fuzzOp is one ALU operation the fuzzer can aim at lento: an assembler for
// the reg-reg form (destination EAX, source ECX, at width w) and the
// matching expr term over w-bit operands.
type fuzzOp struct {
	name string
	// asm emits the instruction at width w (8, 16, or 32).
	asm func(w uint8) []byte
	// term builds the expected result; n is the low-5-bit shift count of
	// operand b (shift ops consume it instead of the full operand).
	term func(a, b *expr.Expr, n uint8) *expr.Expr
	// zfValid marks ops whose ZF is architecturally defined from the result
	// (shift-by-zero and widening multiplies are excluded).
	zfValid bool
}

// regRegASM assembles "op eax, ecx" for a classic ALU opcode whose 8-bit
// form is op8 (the v-width form is op8+1).
func regRegASM(op8 byte) func(uint8) []byte {
	return func(w uint8) []byte {
		switch w {
		case 8:
			return []byte{op8, 0xc8}
		case 16:
			return []byte{0x66, op8 + 1, 0xc8}
		default:
			return []byte{op8 + 1, 0xc8}
		}
	}
}

// grp3ASM assembles a group-3 unary op (modrm /reg) on EAX.
func grp3ASM(reg byte) func(uint8) []byte {
	modrm := 0xc0 | reg<<3
	return func(w uint8) []byte {
		switch w {
		case 8:
			return []byte{0xf6, modrm}
		case 16:
			return []byte{0x66, 0xf7, modrm}
		default:
			return []byte{0xf7, modrm}
		}
	}
}

// shiftASM assembles "op eax, imm8" from the C0/C1 shift group.
func shiftASM(reg byte, n uint8) func(uint8) []byte {
	modrm := 0xc0 | reg<<3
	return func(w uint8) []byte {
		switch w {
		case 8:
			return []byte{0xc0, modrm, n}
		case 16:
			return []byte{0x66, 0xc1, modrm, n}
		default:
			return []byte{0xc1, modrm, n}
		}
	}
}

// shiftTerm folds the architectural count masking (mod 32, independent of
// the lane width) into the expected term.
func shiftTerm(kind byte, n uint8) func(a, b *expr.Expr, _ uint8) *expr.Expr {
	return func(a, _ *expr.Expr, _ uint8) *expr.Expr {
		w := a.Width
		c := n & 31
		switch kind {
		case 0: // shl
			if c >= w {
				return expr.Const(w, 0)
			}
			return expr.Shl(a, expr.Const(w, uint64(c)))
		case 1: // shr
			if c >= w {
				return expr.Const(w, 0)
			}
			return expr.LShr(a, expr.Const(w, uint64(c)))
		default: // sar saturates to a sign fill
			if c >= w {
				c = w - 1
			}
			return expr.AShr(a, expr.Const(w, uint64(c)))
		}
	}
}

// fuzzOps is the operation table the first input byte indexes.
var fuzzOps = []fuzzOp{
	{"add", regRegASM(0x00), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Add(a, b) }, true},
	{"or", regRegASM(0x08), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Or(a, b) }, true},
	// Flags are cleared before the op, so adc/sbb degenerate to add/sub.
	{"adc", regRegASM(0x10), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Add(a, b) }, true},
	{"sbb", regRegASM(0x18), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Sub(a, b) }, true},
	{"and", regRegASM(0x20), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.And(a, b) }, true},
	{"sub", regRegASM(0x28), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Sub(a, b) }, true},
	{"xor", regRegASM(0x30), func(a, b *expr.Expr, _ uint8) *expr.Expr { return expr.Xor(a, b) }, true},
	{"not", grp3ASM(2), func(a, _ *expr.Expr, _ uint8) *expr.Expr { return expr.Not(a) }, false},
	{"neg", grp3ASM(3), func(a, _ *expr.Expr, _ uint8) *expr.Expr { return expr.Neg(a) }, true},
}

// FuzzLentoVsEval is the semantics triangle for the direct-decode
// interpreter: assemble one ALU instruction from fuzzed operands, run it on
// lento under the harness, and require the result register to match (1) the
// pure evaluator expr.Eval on the corresponding term and (2) the solver's
// bit-blaster with the operands pinned — the same style of oracle
// FuzzSemanticsOracle aims at celer's lifted closures.
func FuzzLentoVsEval(f *testing.F) {
	f.Add([]byte{0, 0, 0x04, 0x03, 0x02, 0x01, 0xff, 0xff, 0xff, 0x7f}) // add, w=8
	f.Add([]byte{5, 1, 0x00, 0x00, 0x00, 0x80, 0x01, 0x00, 0x00, 0x00}) // sub, w=16
	f.Add([]byte{8, 2, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}) // neg, w=32
	f.Add([]byte{9, 2, 0x21, 0x43, 0x65, 0x87, 0x05, 0x00, 0x00, 0x00}) // shl 5, w=32
	f.Add([]byte{11, 0, 0x80, 0x00, 0x00, 0x00, 0x21, 0x00, 0x00, 0x00}) // sar 33, w=8
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 10 {
			return
		}
		opIdx := int(data[0]) % (len(fuzzOps) + 3) // +3 shift kinds
		w := []uint8{8, 16, 32}[int(data[1])%3]
		a := binary.LittleEndian.Uint32(data[2:6])
		b := binary.LittleEndian.Uint32(data[6:10])

		var op fuzzOp
		if opIdx < len(fuzzOps) {
			op = fuzzOps[opIdx]
		} else {
			kind := byte(opIdx - len(fuzzOps))
			n := uint8(b) // shift count comes from operand b's low byte
			op = fuzzOp{
				name: []string{"shl", "shr", "sar"}[kind],
				asm:  shiftASM([]byte{4, 5, 7}[kind], n),
				term: shiftTerm(kind, n),
			}
		}

		// Program: clear flags, load operands, run the op, halt.
		p := prog(
			x86.AsmPushImm32(0x2), x86.AsmPopf(),
			x86.AsmMovRegImm32(x86.EAX, a),
			x86.AsmMovRegImm32(x86.ECX, b),
			op.asm(w),
		)
		r := harness.Run(harness.LentoFactory(), nil, p, 32)
		if v := lastVector(r); v != -1 {
			t.Fatalf("%s w=%d a=%#x b=%#x: unexpected fault #%d", op.name, w, a, b, v)
		}

		mask := uint64(1)<<w - 1
		got := uint64(r.Snapshot.CPU.GPR[x86.EAX]) & mask

		av := expr.Const(w, uint64(a)&mask)
		bv := expr.Const(w, uint64(b)&mask)
		e := op.term(av, bv, uint8(b))
		want := expr.Eval(e, nil)
		if got != want {
			t.Fatalf("%s w=%d a=%#x b=%#x: lento %#x, expr.Eval %#x",
				op.name, w, a, b, got, want)
		}

		// ZF must agree with the result where it is defined.
		if op.zfValid {
			zf := r.Snapshot.CPU.EFLAGS>>x86.FlagZF&1 == 1
			if zf != (got == 0) {
				t.Fatalf("%s w=%d a=%#x b=%#x: result %#x but ZF=%v",
					op.name, w, a, b, got, zf)
			}
		}

		// Bit-blaster leg: over symbolic operands pinned to the fuzzed
		// values, "result differs from what lento computed" must be Unsat.
		sa, sb := expr.Var(w, "a"), expr.Var(w, "b")
		se := op.term(sa, sb, uint8(b))
		bl := solver.NewBV()
		lits := []solver.Lit{
			bl.LitFor(expr.Eq(sa, av)),
			bl.LitFor(expr.Eq(sb, bv)),
			bl.LitFor(expr.Ne(se, expr.Const(w, got))),
		}
		if st := bl.CheckLits(lits); st != solver.Unsat {
			t.Fatalf("%s w=%d a=%#x b=%#x: bit-blaster admits a different result (status %v)",
				op.name, w, a, b, st)
		}
	})
}
