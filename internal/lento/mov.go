package lento

import (
	"strings"

	"pokeemu/internal/x86"
)

// execMovLea interprets plain data movement: mov forms, lea, movzx/movsx,
// cmovcc, setcc, xlat, and the moffs forms.
func (x *exec) execMovLea(name string) (*fault, bool) {
	switch name {
	case "mov_rm8_r8", "mov_rmv_rv", "mov_r8_rm8", "mov_rv_rmv",
		"mov_rm8_imm8", "mov_rmv_immv":
		form := strings.TrimPrefix(name, "mov_")
		dstTok, srcTok := splitForm(form)
		dst, f := x.resolveForm(dstTok, true)
		if f != nil {
			return f, true
		}
		src, f := x.resolveForm(srcTok, false)
		if f != nil {
			return f, true
		}
		x.refWrite(dst, x.refRead(src))
		x.done()
		return nil, true
	case "mov_r8_imm8":
		x.gprWrite(x.inst.Opcode&7, 8, x.inst.Imm&0xff)
		x.done()
		return nil, true
	case "mov_r_immv":
		x.gprWrite(x.inst.Opcode&7, x.osz, x.inst.Imm&maskW(x.osz))
		x.done()
		return nil, true
	case "mov_al_moffs", "mov_eax_moffs":
		w := uint8(8)
		if name == "mov_eax_moffs" {
			w = x.osz
		}
		v, f := x.readMem(x.moffsSeg(), x.inst.Disp, w/8, false)
		if f != nil {
			return f, true
		}
		x.gprWrite(0, w, v)
		x.done()
		return nil, true
	case "mov_moffs_al", "mov_moffs_eax":
		w := uint8(8)
		if name == "mov_moffs_eax" {
			w = x.osz
		}
		if f := x.writeMem(x.moffsSeg(), x.inst.Disp, w/8, false, x.gprRead(0, w)); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "lea":
		_, off := x.effAddr() // no memory access, no checks
		if x.osz == 16 {
			x.gprWrite(x.inst.RegField(), 16, uint64(off)&0xffff)
		} else {
			x.gprWrite(x.inst.RegField(), 32, uint64(off))
		}
		x.done()
		return nil, true
	case "movzx_rv_rm8", "movzx_rv_rm16", "movsx_rv_rm8", "movsx_rv_rm16":
		srcW := uint8(8)
		if strings.HasSuffix(name, "16") {
			srcW = 16
		}
		src, f := x.resolveRM(srcW, false)
		if f != nil {
			return f, true
		}
		v := x.rmRead(src)
		if strings.HasPrefix(name, "movsx") {
			v = uint64(signExt(v, srcW)) & maskW(x.osz)
		}
		x.gprWrite(x.inst.RegField(), x.osz, v)
		x.done()
		return nil, true
	case "xlat":
		al := x.gprRead(0, 8)
		ebx := x.m.GPR[x86.EBX]
		v, f := x.readMem(x.moffsSeg(), ebx+uint32(al), 1, false)
		if f != nil {
			return f, true
		}
		x.gprWrite(0, 8, v)
		x.done()
		return nil, true
	}
	if strings.HasPrefix(name, "cmov") {
		cc := ccIndex(strings.TrimPrefix(name, "cmov"))
		// The source is read unconditionally (a faulting memory operand
		// raises even when the move is suppressed).
		src, f := x.resolveRM(x.osz, false)
		if f != nil {
			return f, true
		}
		v := x.rmRead(src)
		if x.condValue(cc) {
			x.gprWrite(x.inst.RegField(), x.osz, v)
		}
		x.done()
		return nil, true
	}
	if strings.HasPrefix(name, "set") && len(name) <= 5 {
		cc := ccIndex(strings.TrimPrefix(name, "set"))
		dst, f := x.resolveRM(8, true)
		if f != nil {
			return f, true
		}
		var v uint64
		if x.condValue(cc) {
			v = 1
		}
		x.rmWrite(dst, v)
		x.done()
		return nil, true
	}
	return nil, false
}

// moffsSeg is the DS-default, override-respecting segment of the implicit
// moffs/xlat addressing forms.
func (x *exec) moffsSeg() x86.SegReg {
	if x.inst.SegOverride >= 0 {
		return x86.SegReg(x.inst.SegOverride)
	}
	return x86.DS
}

// ccIndex maps a condition suffix to its encoding value.
func ccIndex(suffix string) uint8 {
	for i, n := range ccNames {
		if n == suffix {
			return uint8(i)
		}
	}
	panic("lento: unknown condition " + suffix)
}

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// execStack interprets push/pop and frame instructions.
func (x *exec) execStack(name string) (*fault, bool) {
	m := x.m
	switch name {
	case "push_r":
		if f := x.push(x.gprRead(x.inst.Opcode&7, x.osz)); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "pop_r":
		v, f := x.pop()
		if f != nil {
			return f, true
		}
		x.gprWrite(x.inst.Opcode&7, x.osz, v)
		x.done()
		return nil, true
	case "push_immv", "push_imm8s":
		if f := x.push(x.inst.Imm & maskW(x.osz)); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "push_rmv":
		src, f := x.resolveRM(x.osz, false)
		if f != nil {
			return f, true
		}
		if f := x.push(x.rmRead(src)); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "pop_rmv":
		// The popped value lands in an r/m destination; the read and the
		// destination write are both checked before ESP moves.
		v, f := x.stackRead(0, x.osz/8)
		if f != nil {
			return f, true
		}
		dst, f := x.resolveRM(x.osz, true)
		if f != nil {
			return f, true
		}
		m.GPR[x86.ESP] += uint32(x.osz / 8)
		x.rmWrite(dst, v)
		x.done()
		return nil, true
	case "pusha":
		// The whole 8-register frame is checked as one range before any
		// write, so a fault leaves the state untouched (hardware behavior).
		size := uint32(x.osz / 8)
		esp := m.GPR[x86.ESP]
		bottom := esp - 8*size
		if _, f := x.translate(x86.SS, bottom, uint8(8*size), true, true); f != nil {
			return f, true
		}
		for i := uint8(0); i < 8; i++ {
			var v uint64
			if i == uint8(x86.ESP) {
				v = uint64(esp) & maskW(x.osz) // original ESP
			} else {
				v = x.gprRead(i, x.osz)
			}
			// eax lands at the highest address (it is pushed first).
			addr := bottom + uint32(7-i)*size
			if f := x.writeMem(x86.SS, addr, uint8(size), true, v); f != nil {
				return f, true
			}
		}
		m.GPR[x86.ESP] = bottom
		x.done()
		return nil, true
	case "popa":
		size := uint32(x.osz / 8)
		esp := m.GPR[x86.ESP]
		if _, f := x.translate(x86.SS, esp, uint8(8*size), false, true); f != nil {
			return f, true
		}
		for i := uint8(0); i < 8; i++ {
			v, f := x.readMem(x86.SS, esp+uint32(7-i)*size, uint8(size), true)
			if f != nil {
				return f, true
			}
			if i == uint8(x86.ESP) {
				continue // the popped ESP value is discarded
			}
			x.gprWrite(i, x.osz, v)
		}
		m.GPR[x86.ESP] = esp + 8*size
		x.done()
		return nil, true
	case "pushf":
		v := uint64(x.packEFLAGS()) & 0x00fcffff // VM and RF read as 0
		if x.osz == 16 {
			v &= 0xffff
		}
		if f := x.push(v); f != nil {
			return f, true
		}
		x.done()
		return nil, true
	case "popf":
		v, f := x.pop()
		if f != nil {
			return f, true
		}
		x.unpackEFLAGS(v, true)
		x.done()
		return nil, true
	case "enter":
		return x.enter(), true
	case "leave":
		// The load is checked before ESP or EBP change.
		ebp := m.GPR[x86.EBP]
		v, f := x.readMem(x86.SS, ebp, x.osz/8, true)
		if f != nil {
			return f, true
		}
		m.GPR[x86.ESP] = ebp + uint32(x.osz/8)
		if x.osz == 16 {
			x.gprWrite(uint8(x86.EBP), 16, v)
		} else {
			m.GPR[x86.EBP] = uint32(v)
		}
		x.done()
		return nil, true
	}
	return nil, false
}

func (x *exec) enter() *fault {
	m := x.m
	allocSize := uint32(x.inst.Imm) & 0xffff
	level := uint8(x.inst.Imm2) & 0x1f
	size := uint32(x.osz / 8)

	ebp := m.GPR[x86.EBP]
	if f := x.push(uint64(ebp) & maskW(x.osz)); f != nil {
		return f
	}
	frameTemp := m.GPR[x86.ESP]
	for l := uint8(1); l < level; l++ {
		// Copy the enclosing frame pointers.
		v, f := x.readMem(x86.SS, ebp-uint32(l)*size, uint8(size), true)
		if f != nil {
			return f
		}
		if f := x.push(v); f != nil {
			return f
		}
	}
	if level > 0 {
		if f := x.push(uint64(frameTemp) & maskW(x.osz)); f != nil {
			return f
		}
	}
	if x.osz == 16 {
		x.gprWrite(uint8(x86.EBP), 16, uint64(frameTemp)&0xffff)
	} else {
		m.GPR[x86.EBP] = frameTemp
	}
	m.GPR[x86.ESP] -= allocSize
	x.done()
	return nil
}

// execBitOps interprets bt/bts/btr/btc, bsf/bsr, and shld/shrd.
func (x *exec) execBitOps(name string) (*fault, bool) {
	switch {
	case strings.HasPrefix(name, "bt_") || strings.HasPrefix(name, "bts_") ||
		strings.HasPrefix(name, "btr_") || strings.HasPrefix(name, "btc_"):
		op := name[:strings.IndexByte(name, '_')]
		immForm := strings.HasSuffix(name, "imm8")
		return x.bitTest(op, immForm), true
	case name == "bsf" || name == "bsr":
		return x.bitScan(name == "bsr"), true
	case strings.HasPrefix(name, "shld") || strings.HasPrefix(name, "shrd"):
		return x.doubleShift(strings.HasPrefix(name, "shld"),
			strings.HasSuffix(name, "cl")), true
	}
	return nil, false
}

// bitTest implements the bt family. For register destinations the bit index
// wraps within the operand; for memory destinations the bit index addresses
// memory beyond the operand (bitIdx>>5 dwords away, signed).
func (x *exec) bitTest(op string, immForm bool) *fault {
	w := x.osz
	write := op != "bt"
	var bitIdx uint32
	if immForm {
		bitIdx = uint32(x.inst.Imm) & uint32(w-1)
	} else {
		bitIdx = uint32(x.gprRead(x.inst.RegField(), w))
	}

	idx := uint8(bitIdx & uint32(w-1))
	mask := uint64(1) << idx
	apply := func(a uint64) uint64 {
		switch op {
		case "bts":
			return a | mask
		case "btr":
			return a &^ mask
		case "btc":
			return a ^ mask
		}
		return a
	}

	if x.inst.IsRegForm() {
		a := x.gprRead(x.inst.RM(), w)
		x.setFlag(x86.FlagCF, a>>idx&1)
		if write {
			x.gprWrite(x.inst.RM(), w, apply(a))
		}
	} else {
		seg, off := x.effAddr()
		unit := uint32(w / 8)
		// Signed dword (or word) displacement derived from the bit index.
		shift := uint8(5)
		if w == 16 {
			shift = 4
		}
		dwordOff := uint32(int32(bitIdx) >> shift)
		addr := off + dwordOff*unit
		m, f := x.translate(seg, addr, uint8(unit), write, false)
		if f != nil {
			return f
		}
		a := x.memLoad(m)
		x.setFlag(x86.FlagCF, a>>idx&1)
		if write {
			x.memStore(m, apply(a))
		}
	}
	x.done()
	return nil
}

// bitScan implements bsf/bsr.
func (x *exec) bitScan(reverse bool) *fault {
	w := x.osz
	src, f := x.resolveRM(w, false)
	if f != nil {
		return f
	}
	v := x.rmRead(src)
	zero := v == 0
	x.setFlagB(x86.FlagZF, zero)

	var res uint64
	if reverse {
		for i := int(w) - 1; i >= 0; i-- {
			if v>>uint8(i)&1 == 1 {
				res = uint64(i)
				break
			}
		}
	} else {
		for i := 0; i < int(w); i++ {
			if v>>uint8(i)&1 == 1 {
				res = uint64(i)
				break
			}
		}
	}
	// Bochs policy for the zero-source case: destination unchanged.
	if !zero {
		x.gprWrite(x.inst.RegField(), w, res)
	}
	x.done()
	return nil
}

// doubleShift implements shld/shrd.
func (x *exec) doubleShift(left bool, clForm bool) *fault {
	w := x.osz
	dst, f := x.resolveRM(w, true)
	if f != nil {
		return f
	}
	a := x.rmRead(dst)
	fill := x.gprRead(x.inst.RegField(), w)
	var count uint8
	if clForm {
		count = uint8(x.gprRead(1, 8)) & 0x1f
	} else {
		count = uint8(x.inst.Imm) & 0x1f
	}
	if count == 0 {
		x.done()
		return nil
	}

	wn := w - count // 8-bit lane: wraps for counts past the width
	var r, cf uint64
	if left {
		r = shlW(a, count, w) | shrW(fill, wn, w)
		cf = shlW(a, count, w+1) >> w & 1
	} else {
		r = shrW(a, count, w) | shlW(fill, wn, w)
		cf = shrW(a, count-1, w) & 1
	}
	x.setFlag(x86.FlagCF, cf)
	// Bochs ShiftMultiOF policy: formula at count 1, zero otherwise.
	if count == 1 {
		x.setFlag(x86.FlagOF, r>>(w-1)&1^a>>(w-1)&1)
	} else {
		x.setFlag(x86.FlagOF, 0)
	}
	x.szp(r, w)
	x.rmWrite(dst, r)
	x.done()
	return nil
}
