// Randfuzz reproduces the paper's comparison against random testing
// (Sections 6.2 and 8): the iret pop-order and leave atomicity findings
// require precisely placed page boundaries and not-present pages, which
// random register fuzzing essentially never produces, while path
// exploration derives them directly from the Hi-Fi emulator's checks.
package main

import (
	"fmt"
	"log"

	"pokeemu/internal/campaign"
	"pokeemu/internal/diff"
	"pokeemu/internal/randtest"
)

func main() {
	fmt.Println("== Random testing vs path-exploration lifting ==")

	const budget = 2000
	fmt.Printf("\nrandom testing (ISSTA'09-style), %d tests:\n", budget)
	rnd := randtest.Run(randtest.Config{Tests: budget, Seed: 42, FuzzState: true})
	fmt.Printf("  %d byte sequences generated, %d valid, %d tests with differences\n",
		rnd.Generated, rnd.Valid, rnd.DiffTests)
	for cause, n := range rnd.RootCauses {
		fmt.Printf("  found: %-52s %5d\n", cause, n)
	}

	targets := []string{
		"iret: stack pop order",
		"leave: non-atomic ESP update",
		"cmpxchg: accumulator/flags updated before write check",
	}
	fmt.Println("\nordering/atomicity findings:")
	for _, cause := range targets {
		fmt.Printf("  random testing finds %-52q %v\n", cause, rnd.FindsCause(cause))
	}

	fmt.Println("\npath-exploration lifting on the same instructions:")
	res, err := campaign.Run(campaign.Config{
		MaxPathsPerInstr: 256,
		Handlers:         []string{"iret", "leave", "cmpxchg_rmv_rv"},
	})
	if err != nil {
		log.Fatal(err)
	}
	found := map[string]bool{}
	for _, d := range res.Differences {
		found[diff.RootCause(d)] = true
	}
	liftedWins := 0
	for _, cause := range targets {
		fmt.Printf("  lifting finds        %-52q %v\n", cause, found[cause])
		if found[cause] && !rnd.FindsCause(cause) {
			liftedWins++
		}
	}
	fmt.Printf("\n%d of %d ordering/atomicity findings are exclusive to lifting at this budget\n",
		liftedWins, len(targets))
	fmt.Printf("(lifting used %d directed tests; random used %d undirected ones)\n",
		res.TotalTests, budget)
}
