// Quickstart reproduces the paper's running example (Figure 5): explore
// push %eax symbolically on the Hi-Fi emulator, pick a path that exercises
// the stack-segment checks through a rewritten GDT descriptor, print the
// generated test program, and run it on all three implementations.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"pokeemu/internal/core"
	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
)

func main() {
	fmt.Println("== PokeEMU quickstart: path-exploration lifting for push <eax> ==")

	// 1. Machine state-space exploration of the Hi-Fi emulator (§3.3).
	ex, err := core.NewExplorer(symex.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	u := findPush()
	res, err := ex.ExploreState(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d paths through the Hi-Fi implementation (exhausted=%v)\n\n",
		len(res.Tests), res.Exhausted)

	// 2. Pick a path whose test state rewrites the stack-segment descriptor
	// (the Figure 5 case: GDT entry 10 bytes + ESP).
	var pick *core.TestCase
	for _, tc := range res.Tests {
		diffs := tc.Diffs()
		hasGDT, hasESP := false, false
		for name := range diffs {
			if strings.HasPrefix(name, "gm_2080") {
				hasGDT = true
			}
			if name == "st_esp" {
				hasESP = true
			}
		}
		if hasGDT && hasESP {
			pick = tc
			break
		}
	}
	if pick == nil {
		pick = res.Tests[0]
	}
	fmt.Printf("test case %s — explored outcome: %v\n", pick.ID, pick.Outcome)
	fmt.Println("test state (differences from the baseline state):")
	diffs := pick.Diffs()
	names := make([]string, 0, len(diffs))
	for n := range diffs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-18s = %#x\n", n, diffs[n])
	}

	// 3. Test program generation (§4, Figure 5b).
	prog, err := testgen.Build(pick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated test program:")
	fmt.Print(prog.String())

	// 4. Execute on the Hi-Fi emulator, the Lo-Fi emulator, and the
	// hardware oracle (§5), then compare final states (§6).
	boot := testgen.BaselineInit()
	factories := []harness.Factory{
		harness.FidelisFactory(), harness.CelerFactory(), harness.HardwareFactory(),
	}
	results := harness.RunAllBoot(factories, ex.Image(), boot, prog.Code, 0)
	fmt.Println("\nexecution results:")
	for _, r := range results {
		fmt.Printf("  %-9s exception=%v halted=%v esp=%#x\n",
			r.Impl, r.Snapshot.Exception, r.Snapshot.CPU.Halted,
			r.Snapshot.CPU.GPR[4])
	}

	filter := diff.UndefFilterFor(pick.Handler)
	fmt.Println("\ndifferences vs hardware:")
	for _, r := range results[:2] {
		ds := diff.Compare(results[2].Snapshot, r.Snapshot, filter)
		if len(ds) == 0 {
			fmt.Printf("  %-9s none\n", r.Impl)
			continue
		}
		fmt.Printf("  %-9s %d field(s):\n", r.Impl, len(ds))
		for _, d := range ds {
			fmt.Printf("            %v\n", d)
		}
	}
}

func findPush() *core.UniqueInstr {
	for _, u := range core.ExploreInstructionSet().Unique {
		if u.Key() == "push_r" {
			return u
		}
	}
	log.Fatal("push_r not found")
	return nil
}
