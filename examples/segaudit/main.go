// Segaudit demonstrates the paper's security finding: the Lo-Fi emulator
// does not enforce segment limits and rights, so a sandbox that relies on
// segmentation (in the style of Native Client) contains memory accesses on
// real hardware but leaks on the emulator. PokeEMU-generated tests expose
// every such missing check systematically.
package main

import (
	"fmt"
	"log"

	"pokeemu/internal/campaign"
	"pokeemu/internal/diff"
	"pokeemu/internal/harness"
	"pokeemu/internal/machine"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
)

func main() {
	fmt.Println("== Segmentation security audit ==")
	fmt.Println()
	fmt.Println("Scenario: an NaCl-style sandbox confines untrusted code with a")
	fmt.Println("64 KiB data segment. A secret lives just above the limit.")
	fmt.Println()

	image := machine.BaselineImage()
	const secretAddr = 0x00300000 // far above the 64 KiB sandbox limit
	image.Write(secretAddr, uint64(secret()), 4)

	// Sandbox setup + escape attempt: install the 64 KiB descriptor at GDT
	// slot 12, load it into DS, then read past the limit.
	lo, hi := x86.MakeDescriptor(0, 0x0ffff, x86.AttrP|x86.AttrS|x86.AttrWritable)
	prog := concat(
		x86.AsmMovMemImm32(machine.GDTBase+12*8, uint32(lo)),
		x86.AsmMovMemImm32(machine.GDTBase+12*8+4, uint32(hi)),
		x86.AsmMovRegImm16(x86.EAX, 12<<3),
		x86.AsmMovSregReg(x86.DS, x86.EAX),
		x86.AsmMovRegMem32(x86.EBX, secretAddr), // the escape attempt
		x86.AsmHlt(),
	)
	boot := testgen.BaselineInit()
	for _, f := range []harness.Factory{
		harness.HardwareFactory(), harness.FidelisFactory(), harness.CelerFactory(),
	} {
		r := harness.RunBoot(f, image, boot, prog, 0)
		leaked := r.Snapshot.CPU.GPR[x86.EBX]
		switch {
		case r.Snapshot.Exception != nil && r.Snapshot.Exception.Vector == x86.ExcGP:
			fmt.Printf("  %-9s #GP — the sandbox held, nothing leaked\n", r.Impl)
		case leaked == secret():
			fmt.Printf("  %-9s NO FAULT — secret %#x leaked through the emulator!\n",
				r.Impl, leaked)
		default:
			fmt.Printf("  %-9s unexpected state (ebx=%#x, exc=%v)\n",
				r.Impl, leaked, r.Snapshot.Exception)
		}
	}

	// Now show that lifted tests find the whole class systematically: every
	// explored limit-check path of a memory instruction becomes a test, and
	// the missing checks cluster under one root cause.
	fmt.Println()
	fmt.Println("Systematic check via path-exploration lifting (mov through a")
	fmt.Println("symbolic data segment):")
	res, err := campaign.Run(campaign.Config{
		MaxPathsPerInstr: 192,
		Handlers:         []string{"mov_rv_rmv", "mov_rmv_rv"},
	})
	if err != nil {
		log.Fatal(err)
	}
	segDiffs := 0
	for _, d := range res.Differences {
		if diff.RootCause(d) == "segmentation: limits/rights not enforced" &&
			d.ImplB == "celer" {
			segDiffs++
		}
	}
	fmt.Printf("  %d explored paths → %d tests; %d expose unenforced segment checks in the Lo-Fi emulator\n",
		res.TotalPaths, res.TotalTests, segDiffs)
	if segDiffs == 0 {
		log.Fatal("expected lifted tests to expose the missing checks")
	}
	fmt.Println("\nThese regression tests remain valid once the feature is implemented,")
	fmt.Println("exactly as the paper argues for QEMU's missing segmentation support.")
}

func secret() uint32 { return 0x5ec4e7 }

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
