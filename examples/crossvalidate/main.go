// Crossvalidate runs a full mini-campaign: symbolic exploration over a
// representative instruction mix, test generation, three-way execution,
// and root-cause clustering — the Section 6 evaluation at laptop scale.
package main

import (
	"fmt"
	"log"

	"pokeemu/internal/campaign"
)

func main() {
	fmt.Println("== PokeEMU cross-validation campaign ==")
	cfg := campaign.Config{
		MaxPathsPerInstr: 192,
		Seed:             1,
		Handlers: []string{
			// The paper's headline findings...
			"leave", "cmpxchg_rmv_rv", "cmpxchg_rm8_r8", "iret", "rdmsr",
			"lfs", "lgs", "lss", "les", "lds",
			"mov_sreg_rm16", "pop_ss", "add_rm8_imm8_alias", "test_rm8_imm8_alias",
			// ...plus ordinary instructions that should mostly agree.
			"push_r", "pop_r", "add_rmv_rv", "sub_rmv_rv", "and_rmv_rv",
			"shl_rmv_imm8", "mul_rmv", "div_rmv", "inc_r", "xchg_rmv_rv",
			"mov_rmv_rv", "mov_rv_rmv", "movzx_rv_rm8", "enter", "pusha",
			"bt_rmv_rv", "bts_rmv_rv", "cmove", "sete", "wrmsr", "pushf", "popf",
		},
	}
	res, err := campaign.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())

	fmt.Println("\nper-instruction exploration:")
	for _, r := range res.Reports {
		status := "exhausted"
		if !r.Exhausted {
			status = "capped"
		}
		fmt.Printf("  %-22s %5d paths  %-9s  %5d generated  %3d init-fault\n",
			r.Key, r.Paths, status, r.Generated, r.InitFault)
	}

	if res.LoFiDiffTests <= res.HiFiDiffTests {
		log.Fatal("expected the Lo-Fi emulator to diverge far more often than the Hi-Fi one")
	}
	fmt.Printf("\nLo-Fi vs Hi-Fi divergence ratio: %.1fx (the paper reports 60,770 vs 15,219 ≈ 4x)\n",
		float64(res.LoFiDiffTests)/float64(max(1, res.HiFiDiffTests)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
