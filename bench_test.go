// Package bench regenerates every quantitative artifact of the paper's
// evaluation (Section 6) as Go benchmarks. Each benchmark corresponds to an
// experiment row in EXPERIMENTS.md (E1–E9, E11); custom metrics carry the
// counts the paper reports, and ns/op carries the cost side. Run with:
//
//	go test -bench=. -benchmem .
package bench

import (
	"testing"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/core"
	"pokeemu/internal/diff"
	"pokeemu/internal/expr"
	"pokeemu/internal/harness"
	"pokeemu/internal/randtest"
	"pokeemu/internal/solver"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/x86"
	"pokeemu/internal/x86/sem"
)

// mixHandlers is the representative instruction mix used by the scoped
// campaign benchmarks (covering every finding class plus ordinary
// instructions).
var mixHandlers = []string{
	"leave", "cmpxchg_rmv_rv", "iret", "rdmsr", "lfs",
	"mov_sreg_rm16", "add_rm8_imm8_alias", "push_r", "add_rmv_rv",
	"shl_rmv_imm8", "mov_rv_rmv", "mul_rmv", "enter", "pop_r",
}

// BenchmarkE1InstructionSetExploration regenerates the Section 6.1
// instruction discovery numbers: decoder paths explored, candidate byte
// sequences, unique instructions (paper: 68,977 candidates → 880 unique).
func BenchmarkE1InstructionSetExploration(b *testing.B) {
	var res *core.InstrSetResult
	for i := 0; i < b.N; i++ {
		res = core.ExploreInstructionSet()
	}
	b.ReportMetric(float64(res.ExploredPaths), "decoder-paths")
	b.ReportMetric(float64(len(res.Candidates)), "candidates")
	b.ReportMetric(float64(len(res.Unique)), "unique-instrs")
}

// BenchmarkE2StateSpaceExploration regenerates the path-exploration
// numbers: total explored paths and the fraction of instructions explored
// exhaustively under the path cap (paper: 610,516 paths, ≥95% exhaustive at
// cap 8192).
func BenchmarkE2StateSpaceExploration(b *testing.B) {
	opts := symex.DefaultOptions()
	opts.MaxPaths = 256
	var paths, exhausted, instrs int
	var queries int64
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExplorer(opts)
		if err != nil {
			b.Fatal(err)
		}
		paths, exhausted, instrs, queries = 0, 0, 0, 0
		for _, u := range instrMix(b) {
			res, err := ex.ExploreState(u)
			if err != nil {
				b.Fatal(err)
			}
			paths += len(res.Tests)
			instrs++
			if res.Exhausted {
				exhausted++
			}
			queries += res.Stats.SolverQueries
		}
	}
	b.ReportMetric(float64(paths), "paths")
	b.ReportMetric(100*float64(exhausted)/float64(instrs), "%exhaustive")
	b.ReportMetric(float64(queries)/float64(paths), "queries/path")
}

// BenchmarkE3DifferenceCounts regenerates the Section 6.2 headline: tests
// distinguishing the Lo-Fi emulator vs tests distinguishing the Hi-Fi
// emulator from hardware (paper: 60,770 vs 15,219 of 610,516 — Lo-Fi ≈ 4×
// Hi-Fi).
func BenchmarkE3DifferenceCounts(b *testing.B) {
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = campaign.Run(campaign.Config{
			MaxPathsPerInstr: 128, Handlers: mixHandlers, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalTests), "tests")
	b.ReportMetric(float64(res.LoFiDiffTests), "lofi-diff-tests")
	b.ReportMetric(float64(res.HiFiDiffTests), "hifi-diff-tests")
	b.ReportMetric(float64(res.LoFiDiffTests)/float64(maxi(1, res.HiFiDiffTests)), "lofi/hifi")
}

// BenchmarkE4RootCauses regenerates the root-cause taxonomy: the number of
// distinct cause classes the clustering isolates (the paper reports
// atomicity, segmentation, rdmsr, pop/fetch order, accessed-flag, encoding,
// and undefined-flag classes).
func BenchmarkE4RootCauses(b *testing.B) {
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = campaign.Run(campaign.Config{
			MaxPathsPerInstr: 128, Handlers: mixHandlers, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	known := 0
	for cause := range res.RootCauses {
		if cause != "" && !isOther(cause) {
			known++
		}
	}
	b.ReportMetric(float64(len(res.RootCauses)), "cause-classes")
	b.ReportMetric(float64(known), "classified")
	b.ReportMetric(float64(len(res.Differences)), "differences")
}

// BenchmarkE5RandomBaseline regenerates the random-testing comparison: with
// an equal-order test budget, random testing misses the ordering and
// atomicity findings that lifting derives directly from the checks.
func BenchmarkE5RandomBaseline(b *testing.B) {
	var rnd *randtest.Result
	for i := 0; i < b.N; i++ {
		rnd = randtest.Run(randtest.Config{Tests: 400, Seed: 42, FuzzState: true})
	}
	ordering := 0
	for _, c := range []string{
		"iret: stack pop order",
		"leave: non-atomic ESP update",
		"cmpxchg: accumulator/flags updated before write check",
	} {
		if rnd.FindsCause(c) {
			ordering++
		}
	}
	b.ReportMetric(float64(rnd.DiffTests), "diff-tests")
	b.ReportMetric(float64(ordering), "ordering-bugs-found")
}

// E6: per-stage cost profile. The paper's CPU-hour table (generation 545.4h;
// execution 391.9h Bochs / 198.7h QEMU / 48.5h KVM; comparison 175.9h)
// becomes per-stage ns/op here; the shape to check is that generation
// dominates per test and that the Hi-Fi interpreter is the most expensive
// executor.

func BenchmarkE6aGeneration(b *testing.B) {
	ex, err := core.NewExplorer(symex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	u := instrMix(b)[0]
	res, err := ex.ExploreState(u)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		tc := res.Tests[i%len(res.Tests)]
		if _, err := testgen.Build(tc); err == nil {
			n++
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "build-rate")
}

func execBench(b *testing.B, factory harness.Factory) {
	ex, err := core.NewExplorer(symex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := ex.ExploreState(instrMix(b)[0])
	if err != nil {
		b.Fatal(err)
	}
	var progs [][]byte
	for _, tc := range res.Tests {
		if p, err := testgen.Build(tc); err == nil {
			progs = append(progs, p.Code)
		}
	}
	boot := testgen.BaselineInit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunBoot(factory, ex.Image(), boot, progs[i%len(progs)], 0)
	}
}

func BenchmarkE6bExecHiFi(b *testing.B) { execBench(b, harness.FidelisFactory()) }
func BenchmarkE6cExecLoFi(b *testing.B) { execBench(b, harness.CelerFactory()) }
func BenchmarkE6dExecHW(b *testing.B)   { execBench(b, harness.HardwareFactory()) }

func BenchmarkE6eCompare(b *testing.B) {
	ex, err := core.NewExplorer(symex.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := ex.ExploreState(instrMix(b)[0])
	if err != nil {
		b.Fatal(err)
	}
	tc := res.Tests[0]
	p, err := testgen.Build(tc)
	if err != nil {
		b.Fatal(err)
	}
	boot := testgen.BaselineInit()
	a := harness.RunBoot(harness.FidelisFactory(), ex.Image(), boot, p.Code, 0)
	c := harness.RunBoot(harness.CelerFactory(), ex.Image(), boot, p.Code, 0)
	filter := diff.UndefFilterFor(tc.Handler)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.Compare(a.Snapshot, c.Snapshot, filter)
	}
}

// BenchmarkE7Minimization measures the Section 3.4 ablation: Hamming
// distance of test states to the baseline with and without greedy
// minimization, and the initializer-failure rate (the paper reports zero
// failures on minimized states).
func BenchmarkE7Minimization(b *testing.B) {
	run := func(skip bool) (avgHamming float64, initOK, total int) {
		opts := symex.DefaultOptions()
		opts.MaxPaths = 128
		opts.SkipMinimize = skip
		ex, err := core.NewExplorer(opts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ex.ExploreState(instrMix(b)[0])
		if err != nil {
			b.Fatal(err)
		}
		hamming := 0
		for _, tc := range res.Tests {
			hamming += symex.HammingToBaseline(tc.Assignment, tc.Baseline, tc.Widths)
			p, err := testgen.Build(tc)
			if err != nil {
				continue
			}
			total++
			if testgen.Verify(p, ex.Image()) {
				initOK++
			}
		}
		return float64(hamming) / float64(len(res.Tests)), initOK, total
	}
	var minH, rawH float64
	var okMin, totMin int
	for i := 0; i < b.N; i++ {
		minH, okMin, totMin = run(false)
		rawH, _, _ = run(true)
	}
	b.ReportMetric(minH, "bits-minimized")
	b.ReportMetric(rawH, "bits-raw")
	b.ReportMetric(100*float64(okMin)/float64(maxi(1, totMin)), "%init-ok")
}

// BenchmarkE8Summarization measures the Section 3.3.2 summary: path count
// of the descriptor parse (paper: 23) and construction cost. Without the
// summary, six symbolic segments would multiply the per-instruction search
// space by paths^6.
func BenchmarkE8Summarization(b *testing.B) {
	var paths int
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExplorer(symex.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		paths = ex.SummaryPaths
	}
	b.ReportMetric(float64(paths), "parse-paths")
	// The avoided blowup factor (paths^5 over the five symbolic segments).
	blow := 1.0
	for i := 0; i < 5; i++ {
		blow *= float64(paths)
	}
	b.ReportMetric(blow, "avoided-blowup")
}

// --- E9: persistent corpus (cold vs warm campaign) ---

// corpusBenchConfig is the campaign workload the corpus benchmarks re-run.
func corpusBenchConfig(dir string) campaign.Config {
	return campaign.Config{
		MaxPathsPerInstr: 64,
		Handlers:         mixHandlers,
		Seed:             1,
		CorpusDir:        dir,
		Resume:           true,
	}
}

// BenchmarkE9aCampaignCold measures the campaign with an empty corpus every
// iteration: full symbolic exploration, generation, and execution.
func BenchmarkE9aCampaignCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(corpusBenchConfig(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		if res.Cache.InstrHits != 0 || res.Cache.InstrMisses == 0 {
			b.Fatalf("cold run hit the cache: %+v", res.Cache)
		}
	}
}

// BenchmarkE9bCampaignWarm measures the same campaign against a primed
// corpus: exploration, generation, and (via resume) execution all resolve
// from the content-addressed store.
func BenchmarkE9bCampaignWarm(b *testing.B) {
	dir := b.TempDir()
	if _, err := campaign.Run(corpusBenchConfig(dir)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = campaign.Run(corpusBenchConfig(dir)); err != nil {
			b.Fatal(err)
		}
	}
	if res.Cache.InstrMisses != 0 || !res.Cache.SummaryHit {
		b.Fatalf("warm run missed the cache: %+v", res.Cache)
	}
	b.ReportMetric(float64(res.Cache.InstrHits), "cached-instrs")
	b.ReportMetric(float64(res.Cache.TestsCached), "cached-tests")
	b.ReportMetric(float64(res.Cache.ExecHits), "cached-execs")
}

// BenchmarkE9CorpusSpeedup reports the cold/warm ratio directly — the
// tentpole's acceptance number (a warm corpus must be ≥5× faster).
func BenchmarkE9CorpusSpeedup(b *testing.B) {
	var cold, warm time.Duration
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		t0 := time.Now()
		if _, err := campaign.Run(corpusBenchConfig(dir)); err != nil {
			b.Fatal(err)
		}
		cold += time.Since(t0)
		t0 = time.Now()
		res, err := campaign.Run(corpusBenchConfig(dir))
		if err != nil {
			b.Fatal(err)
		}
		warm += time.Since(t0)
		if res.Cache.InstrHits == 0 {
			b.Fatal("warm run did not hit the corpus")
		}
	}
	b.ReportMetric(cold.Seconds()*1000/float64(b.N), "cold-ms")
	b.ReportMetric(warm.Seconds()*1000/float64(b.N), "warm-ms")
	b.ReportMetric(float64(cold)/float64(maxi(1, int(warm))), "speedup")
}

// --- E11: solver hot path — interning, memoization, parallel exploration ---

// e11Config is the cold-exploration workload: the full benchmark mix, no
// corpus, so every iteration pays the complete symbolic-exploration cost.
func e11Config(workers int) campaign.Config {
	return campaign.Config{
		MaxPathsPerInstr: 128,
		Handlers:         mixHandlers,
		Seed:             1,
		Workers:          workers,
		ExploreWorkers:   workers,
	}
}

// BenchmarkE11ColdExplore is the tentpole's acceptance number: a cold
// campaign (exploration-dominated — there is no corpus to resume from) at
// Workers=4 against Workers=1, with the byte-identical-report contract
// asserted every iteration. The reported "speedup" is only meaningful on a
// multi-core host; on a single-CPU machine (GOMAXPROCS=1) it reads ~1.0 —
// the parallel machinery costs nothing — while the determinism check still
// runs. The hot-path win that survives any core count is the seed-vs-now
// sequential comparison recorded in EXPERIMENTS.md E11 (interning, query
// memoization, deficit-shared subtree budgets). The per-path determinism
// behind the report comparison is TestParallelExploreDeterministic (symex)
// and TestWorkerDeterminism (campaign).
func BenchmarkE11ColdExplore(b *testing.B) {
	var seq, par time.Duration
	var res *campaign.Result
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		r1, err := campaign.Run(e11Config(1))
		if err != nil {
			b.Fatal(err)
		}
		seq += time.Since(t0)
		t0 = time.Now()
		r4, err := campaign.Run(e11Config(4))
		if err != nil {
			b.Fatal(err)
		}
		par += time.Since(t0)
		if r1.Summary() != r4.Summary() {
			b.Fatal("Workers=1 and Workers=4 reports differ")
		}
		res = r4
	}
	b.ReportMetric(seq.Seconds()*1000/float64(b.N), "w1-ms")
	b.ReportMetric(par.Seconds()*1000/float64(b.N), "w4-ms")
	b.ReportMetric(float64(seq)/float64(maxi(1, int(par))), "speedup")
	b.ReportMetric(float64(res.Solver.Queries), "queries")
	b.ReportMetric(100*float64(res.Solver.MemoHits)/
		float64(maxi(1, int(res.Solver.MemoHits+res.Solver.MemoMisses))), "%memo-hit")
	b.ReportMetric(100*float64(res.Solver.InternHits)/
		float64(maxi(1, int(res.Solver.InternHits+res.Solver.InternMisses))), "%intern-hit")
}

// --- Substrate microbenchmarks (cost model underneath the experiments) ---

func BenchmarkSolverBitblastAndSolve(b *testing.B) {
	x := expr.Var(32, "x")
	y := expr.Var(32, "y")
	c1 := expr.Eq(expr.Add(x, y), expr.Const(32, 12345))
	c2 := expr.Ult(x, expr.Const(32, 1000))
	for i := 0; i < b.N; i++ {
		bv := solver.NewBV()
		if bv.Check([]*expr.Expr{c1, c2}) != solver.Sat {
			b.Fatal("unsat")
		}
	}
}

func BenchmarkSolverIncremental(b *testing.B) {
	bv := solver.NewBV()
	x := expr.Var(32, "x")
	base := expr.Ult(x, expr.Const(32, 1<<30))
	baseLit := bv.LitFor(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := expr.Eq(expr.And(x, expr.Const(32, 0xff)), expr.Const(32, uint64(i%256)))
		if bv.CheckLits([]solver.Lit{baseLit, bv.LitFor(probe)}) != solver.Sat {
			b.Fatal("unsat")
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	code := []byte{0x66, 0x81, 0x84, 0x8d, 1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		if _, err := x86.Decode(code); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemCompile(b *testing.B) {
	inst, err := x86.Decode([]byte{0x01, 0x18}) // add %ebx, (%eax)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sem.Compile(inst, sem.BochsConfig)
	}
}

// instrMix resolves the benchmark handler mix to unique instructions.
func instrMix(b *testing.B) []*core.UniqueInstr {
	b.Helper()
	all := core.ExploreInstructionSet().Unique
	want := map[string]bool{}
	for _, h := range mixHandlers {
		want[h] = true
	}
	var out []*core.UniqueInstr
	for _, u := range all {
		if want[u.Key()] {
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		b.Fatal("no instructions in mix")
	}
	return out
}

func isOther(cause string) bool {
	return len(cause) >= 5 && cause[:5] == "other"
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
