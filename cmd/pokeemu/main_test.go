package main

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pokeemu/internal/campaign"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTraceGolden pins the `pokeemu trace` output byte for byte on each
// implementation, for a small program that exercises arithmetic, stack
// traffic, flags, and the halt path. Regenerate intentionally with:
// go test ./cmd/pokeemu -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	// mov eax,0x2a; push eax; pop ebx; add ebx,eax; hlt
	prog, err := hex.DecodeString("b82a000000505b01c3f4")
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []string{"fidelis", "celer", "hardware"} {
		t.Run(impl, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runTrace(&buf, impl, prog, 64); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "trace_"+impl+".golden"), buf.Bytes())
		})
	}
}

func TestTraceUnknownImpl(t *testing.T) {
	var buf bytes.Buffer
	if err := runTrace(&buf, "qemu", nil, 1); err == nil {
		t.Error("expected error for unknown implementation")
	}
}

// TestValidateCampaignFlags: edge-case flag values error instead of
// hanging (workers) or misbehaving silently (negative caps and budgets).
func TestValidateCampaignFlags(t *testing.T) {
	cases := []struct {
		name                                            string
		workers, exWorkers, cap, instrs, steps, tsSteps int
		timeout, stage                                  time.Duration
		wantErr                                         string
	}{
		{"ok-defaults", 4, 0, 256, 0, 0, 0, 0, 0, ""},
		{"ok-explore-workers", 4, 8, 256, 0, 0, 0, 0, 0, ""},
		{"ok-stage-timeout", 4, 0, 256, 0, 0, 0, 0, time.Minute, ""},
		{"zero-workers", 0, 0, 256, 0, 0, 0, 0, 0, "-workers"},
		{"negative-workers", -3, 0, 256, 0, 0, 0, 0, 0, "-workers"},
		{"negative-explore-workers", 4, -1, 256, 0, 0, 0, 0, 0, "-explore-workers"},
		{"zero-cap", 1, 0, 0, 0, 0, 0, 0, 0, "-cap"},
		{"negative-instrs", 1, 0, 8, -1, 0, 0, 0, 0, "-instrs"},
		{"negative-maxsteps", 1, 0, 8, 0, -1, 0, 0, 0, "-maxsteps"},
		{"negative-test-steps", 1, 0, 8, 0, 0, -9, 0, 0, "-test-steps"},
		{"negative-test-timeout", 1, 0, 8, 0, 0, 0, -time.Second, 0, "-test-timeout"},
		{"negative-stage-timeout", 1, 0, 8, 0, 0, 0, 0, -time.Second, "-stage-timeout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateCampaignFlags(c.workers, c.exWorkers, c.cap, c.instrs, c.steps, c.tsSteps, c.timeout, c.stage)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, c.wantErr)
			}
		})
	}
}

// TestProgressPrinter: throttled rendering — stage entries, every ~5%, and
// the final unit always print; a mid-stage non-step event does not.
func TestProgressPrinter(t *testing.T) {
	var buf bytes.Buffer
	p := progressPrinter(&buf)
	p(campaign.Event{Stage: campaign.StageExplore, Done: 0, Total: 100})
	p(campaign.Event{Stage: campaign.StageExplore, Key: "a", Done: 3, Total: 100}) // throttled out
	p(campaign.Event{Stage: campaign.StageExplore, Key: "b", Done: 5, Total: 100})
	p(campaign.Event{Stage: campaign.StageExplore, Key: "c", Done: 100, Total: 100})
	out := buf.String()
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", got, out)
	}
	if strings.Contains(out, " a\n") || !strings.Contains(out, " b\n") || !strings.Contains(out, " c\n") {
		t.Errorf("throttling wrong:\n%s", out)
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("output differs from %s (run with -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}
