package main

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTraceGolden pins the `pokeemu trace` output byte for byte on each
// implementation, for a small program that exercises arithmetic, stack
// traffic, flags, and the halt path. Regenerate intentionally with:
// go test ./cmd/pokeemu -run TestTraceGolden -update
func TestTraceGolden(t *testing.T) {
	// mov eax,0x2a; push eax; pop ebx; add ebx,eax; hlt
	prog, err := hex.DecodeString("b82a000000505b01c3f4")
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []string{"fidelis", "celer", "hardware"} {
		t.Run(impl, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runTrace(&buf, impl, prog, 64); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "trace_"+impl+".golden"), buf.Bytes())
		})
	}
}

func TestTraceUnknownImpl(t *testing.T) {
	var buf bytes.Buffer
	if err := runTrace(&buf, "qemu", nil, 1); err == nil {
		t.Error("expected error for unknown implementation")
	}
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(want) != string(got) {
		t.Errorf("output differs from %s (run with -update to regenerate):\n--- want:\n%s\n--- got:\n%s",
			path, want, got)
	}
}
