// Command pokeemu drives the path-exploration-lifting pipeline from the
// command line: decoder exploration, per-instruction state exploration,
// test-program generation, cross-validation campaigns, and the
// random-testing baseline.
//
// Usage:
//
//	pokeemu explore
//	pokeemu paths -i push_r [-cap 8192]
//	pokeemu gen -i push_r [-path 0]
//	pokeemu campaign [-instrs N] [-cap N] [-handlers a,b,c] [-workers N]
//	                 [-explore-workers N] [-corpus DIR] [-resume] [-no-cache]
//	                 [-timing] [-progress] [-test-steps N] [-test-timeout D]
//	                 [-stage-timeout D] [-faults SPEC] [-pprof PREFIX] [-vote]
//	pokeemu triage [campaign flags] [-baseline FILE] [-minimize] [-budget N]
//	               [-update-baseline] [-json FILE] [-gate]
//	pokeemu triage -diff OLD.json NEW.json [-gate]
//	pokeemu random [-tests N] [-fuzz]
//	pokeemu sequence -seq f9,11d8 [-cap N]
//	pokeemu trace -prog b82a000000f4 [-on celer]
//	pokeemu equivcheck [-handlers a,b,c] [-cap N] [-budget N] [-workers N]
//	                   [-corpus DIR] [-no-cache] [-json FILE] [-timing]
//	                   [-gate] [-known FILE]
//
// Equivcheck: symbolic disequivalence checking between the Hi-Fi and Lo-Fi
// implementations. Each handler's fidelis IR program and celer translation
// are executed symbolically over one shared symbolic pre-state and the
// solver decides, per output, whether any input distinguishes them: EQUIV
// is a proof (within the modeled state space), DIVERGES carries a decoded,
// concretely replayed counterexample, UNKNOWN names the exhausted stage.
// -gate exits nonzero on any UNKNOWN or any DIVERGES outside the -known
// file; -corpus caches verdicts so warm runs issue zero solver queries.
//
// Triage: runs a campaign, partitions its divergences against the -baseline
// file (known vs. new), clusters them, and with -minimize ddmin-shrinks each
// divergent case while preserving its divergence signature. -update-baseline
// records this run's clusters back into the baseline; -gate exits nonzero
// when any new divergence appears — the CI regression gate. The -diff form
// compares two saved report JSON files and prints only the delta.
//
// Campaign corpus flags: -corpus DIR roots the persistent test corpus
// (content-addressed cache of exploration and generation results) so a warm
// re-run skips symbolic exploration; -resume additionally caches and reuses
// per-test execution outcomes; -no-cache ignores cached artifacts while
// still refreshing them; -timing appends the per-stage wall-time and
// cache-hit-rate table to the report.
//
// Chaos testing: -faults SPEC (or the POKEEMU_FAULTS environment variable)
// arms the deterministic fault-injection registry for the run, e.g.
// "seed=7;corpus.write:p=0.2:err". Injected faults degrade the campaign
// (explicit degraded section in the report) instead of failing it.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"pokeemu/internal/campaign"
	"pokeemu/internal/core"
	"pokeemu/internal/corpus"
	"pokeemu/internal/emu"
	"pokeemu/internal/equivcheck"
	"pokeemu/internal/faults"
	"pokeemu/internal/harness"
	"pokeemu/internal/machine"
	"pokeemu/internal/randtest"
	"pokeemu/internal/symex"
	"pokeemu/internal/testgen"
	"pokeemu/internal/triage"
	"pokeemu/internal/x86"
)

func main() {
	if spec := os.Getenv(faults.EnvVar); spec != "" {
		if _, err := faults.ArmSpec(spec); err != nil {
			die(fmt.Errorf("%s: %w", faults.EnvVar, err))
		}
	}
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "explore":
		cmdExplore()
	case "paths":
		cmdPaths(os.Args[2:])
	case "gen":
		cmdGen(os.Args[2:])
	case "campaign":
		cmdCampaign(os.Args[2:])
	case "triage":
		cmdTriage(os.Args[2:])
	case "random":
		cmdRandom(os.Args[2:])
	case "sequence":
		cmdSequence(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "equivcheck":
		cmdEquivcheck(os.Args[2:])
	default:
		usage()
	}
}

// cmdEquivcheck runs the symbolic disequivalence checker over a handler
// set and prints the deterministic verdict report.
func cmdEquivcheck(args []string) {
	fs := flag.NewFlagSet("equivcheck", flag.ExitOnError)
	handlers := fs.String("handlers", "",
		"comma-separated handler keys; \"gate\" = the seeded gate subset (\"\" = every handler)")
	cap := fs.Int("cap", equivcheck.DefaultPathCap, "fidelis path cap per handler")
	budget := fs.Int64("budget", 0, "solver query budget per handler (0 = unlimited)")
	conflicts := fs.Int64("conflicts", equivcheck.DefaultMaxConflicts,
		"per-query SAT conflict budget; exceeding it yields UNKNOWN (0 = unlimited)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"parallel handler checks (never changes the report)")
	corpusDir := fs.String("corpus", "", "corpus directory for verdict caching (\"\" = no cache)")
	noCache := fs.Bool("no-cache", false, "ignore cached verdicts (still refreshes the corpus)")
	jsonOut := fs.String("json", "", "write the report JSON to FILE")
	timing := fs.Bool("timing", false, "append the wall-time and verdict-cache table")
	gate := fs.Bool("gate", false, "exit 1 on any UNKNOWN or any DIVERGES outside -known")
	known := fs.String("known", "", "known-diverges JSON file for -gate")
	fs.Parse(args)

	if *workers <= 0 {
		die(fmt.Errorf("-workers must be >= 1 (got %d)", *workers))
	}
	opts := equivcheck.Options{
		MaxPaths:     *cap,
		Budget:       *budget,
		MaxConflicts: *conflicts,
		Workers:      *workers,
		NoCache:      *noCache,
	}
	switch *handlers {
	case "":
	case "gate":
		opts.Handlers = equivcheck.DefaultGateHandlers
	default:
		opts.Handlers = strings.Split(*handlers, ",")
	}
	if *corpusDir != "" {
		crp, err := corpus.Open(*corpusDir)
		if err != nil {
			die(err)
		}
		opts.Corpus = crp
	}
	rep, err := equivcheck.Run(opts)
	if err != nil {
		die(err)
	}
	fmt.Print(rep.Render())
	if *timing {
		fmt.Println()
		fmt.Print(rep.Timing.Table())
	}
	if *jsonOut != "" {
		data, err := rep.Encode()
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			die(err)
		}
	}
	if *gate {
		kd, err := equivcheck.LoadKnownDiverges(*known)
		if err != nil {
			die(err)
		}
		if violations := rep.Gate(kd); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "pokeemu: equivcheck gate:", v)
			}
			os.Exit(1)
		}
	}
}

// cmdTrace executes a hex-encoded program on one implementation, printing
// each instruction with its register effects — the debugging view used when
// analyzing a difference by hand (the paper's "examined representative
// tests" step).
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	progHex := fs.String("prog", "b82a000000f4", "hex-encoded program bytes")
	impl := fs.String("on", "fidelis", "fidelis | celer | lento | hardware")
	steps := fs.Int("steps", 64, "max instructions")
	fs.Parse(args)

	prog, err := hex.DecodeString(*progHex)
	if err != nil {
		die(err)
	}
	if err := runTrace(os.Stdout, *impl, prog, *steps); err != nil {
		die(err)
	}
}

// runTrace is the testable core of cmdTrace: it writes the instruction
// trace to w, so the golden test can capture it byte for byte.
func runTrace(w io.Writer, impl string, prog []byte, steps int) error {
	var factory harness.Factory
	switch impl {
	case "fidelis":
		factory = harness.FidelisFactory()
	case "celer":
		factory = harness.CelerFactory()
	case "lento":
		factory = harness.LentoFactory()
	case "hardware":
		factory = harness.HardwareFactory()
	default:
		return fmt.Errorf("unknown implementation %q", impl)
	}

	image := machine.BaselineImage()
	m := machine.NewBaseline(image)
	m.Mem.WriteBytes(machine.CodeBase, prog)
	e := factory.New(m)

	prev := m.CPU
	for i := 0; i < steps; i++ {
		code, _ := m.FetchCode(x86.MaxInstLen)
		dis := "(fetch fault)"
		if inst, err := x86.Decode(code); err == nil {
			dis = x86.Disasm(inst)
		}
		eip := m.EIP
		ev := e.Step()
		fmt.Fprintf(w, "%08x  %-32s", eip, dis)
		for r := 0; r < 8; r++ {
			if m.GPR[r] != prev.GPR[r] {
				fmt.Fprintf(w, "  %s←%#x", x86.Reg(r), m.GPR[r])
			}
		}
		if m.EFLAGS != prev.EFLAGS {
			fmt.Fprintf(w, "  eflags←%#x", m.EFLAGS)
		}
		if ev.Exception != nil {
			fmt.Fprintf(w, "  %v", ev.Exception)
		}
		fmt.Fprintln(w)
		prev = m.CPU
		if ev.Kind == emu.EventHalt || ev.Kind == emu.EventShutdown {
			fmt.Fprintf(w, "terminated: %v\n", ev.Kind)
			return nil
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: pokeemu explore | paths | gen | campaign | triage | random | sequence | trace | equivcheck")
	os.Exit(2)
}

// cmdSequence explores a multi-instruction sequence given as
// comma-separated hex encodings, e.g. -seq f9,11d8 for "stc; adc".
func cmdSequence(args []string) {
	fs := flag.NewFlagSet("sequence", flag.ExitOnError)
	seq := fs.String("seq", "f9,11d8", "comma-separated hex instruction encodings")
	cap := fs.Int("cap", 1024, "path cap")
	fs.Parse(args)

	var encodings [][]byte
	for _, part := range strings.Split(*seq, ",") {
		b, err := hex.DecodeString(part)
		if err != nil {
			die(fmt.Errorf("bad hex %q: %w", part, err))
		}
		encodings = append(encodings, b)
	}
	opts := symex.DefaultOptions()
	opts.MaxPaths = *cap
	ex, err := core.NewExplorer(opts)
	if err != nil {
		die(err)
	}
	res, err := ex.ExploreSequence(encodings)
	if err != nil {
		die(err)
	}
	fmt.Printf("%s: %d paths, exhausted=%v\n",
		res.Instr.Key(), len(res.Tests), res.Exhausted)
	for _, tc := range res.Tests {
		fmt.Printf("  path %3d: %-22v state diffs: %d\n",
			tc.PathIndex, tc.Outcome, len(tc.Diffs()))
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "pokeemu:", err)
	os.Exit(1)
}

func cmdExplore() {
	res := core.ExploreInstructionSet()
	fmt.Printf("decoder paths explored: %d (of a raw 2^24 three-byte space)\n",
		res.ExploredPaths)
	fmt.Printf("candidate byte sequences: %d\n", len(res.Candidates))
	fmt.Printf("unique instructions: %d\n", len(res.Unique))
	for _, u := range res.Unique {
		fmt.Printf("  %-24s % x\n", u.Key(), u.Repr)
	}
}

func findInstr(key string) (*core.UniqueInstr, error) {
	for _, u := range core.ExploreInstructionSet().Unique {
		if u.Key() == key {
			return u, nil
		}
	}
	return nil, fmt.Errorf("unknown instruction key %q (see pokeemu explore)", key)
}

func cmdPaths(args []string) {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	key := fs.String("i", "push_r", "instruction handler key")
	cap := fs.Int("cap", 8192, "path cap")
	fs.Parse(args)

	u, err := findInstr(*key)
	if err != nil {
		die(err)
	}
	opts := symex.DefaultOptions()
	opts.MaxPaths = *cap
	ex, err := core.NewExplorer(opts)
	if err != nil {
		die(err)
	}
	res, err := ex.ExploreState(u)
	if err != nil {
		die(err)
	}
	fmt.Printf("%s: %d paths, exhausted=%v, %d solver queries, %d tree nodes\n",
		u.Key(), len(res.Tests), res.Exhausted,
		res.Stats.SolverQueries, res.Stats.TreeNodes)
	for _, tc := range res.Tests {
		fmt.Printf("  path %3d: %-22v state diffs: %d\n",
			tc.PathIndex, tc.Outcome, len(tc.Diffs()))
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	key := fs.String("i", "push_r", "instruction handler key")
	pathIdx := fs.Int("path", -1, "path index (-1 = first buildable with state diffs)")
	fs.Parse(args)

	u, err := findInstr(*key)
	if err != nil {
		die(err)
	}
	ex, err := core.NewExplorer(symex.DefaultOptions())
	if err != nil {
		die(err)
	}
	res, err := ex.ExploreState(u)
	if err != nil {
		die(err)
	}
	for _, tc := range res.Tests {
		if *pathIdx >= 0 && tc.PathIndex != *pathIdx {
			continue
		}
		if *pathIdx < 0 && len(tc.Diffs()) == 0 {
			continue
		}
		p, err := testgen.Build(tc)
		if err != nil {
			if *pathIdx >= 0 {
				die(err)
			}
			continue
		}
		fmt.Printf("test %s (outcome %v)\n", tc.ID, tc.Outcome)
		fmt.Println("state assignment (differences from baseline):")
		diffs := tc.Diffs()
		names := make([]string, 0, len(diffs))
		for n := range diffs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s = %#x\n", n, diffs[n])
		}
		fmt.Println("test program:")
		fmt.Print(p.String())
		return
	}
	die(fmt.Errorf("no matching path"))
}

func cmdCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	instrs := fs.Int("instrs", 0, "max unique instructions (0 = all)")
	cap := fs.Int("cap", 256, "paths per instruction")
	handlers := fs.String("handlers", "", "comma-separated handler keys")
	seed := fs.Int64("seed", 1, "exploration seed")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers")
	exploreWorkers := fs.Int("explore-workers", 0,
		"workers inside each instruction's symbolic exploration (0 or 1 = sequential; never changes the report)")
	maxSteps := fs.Int("maxsteps", 0, "per-path IR step cap (0 = default)")
	corpusDir := fs.String("corpus", "", "persistent test corpus directory (\"\" = no cache)")
	resume := fs.Bool("resume", false, "also cache and reuse per-test execution outcomes")
	noCache := fs.Bool("no-cache", false, "ignore cached artifacts (still refreshes the corpus)")
	timing := fs.Bool("timing", false, "append the per-stage timing and cache-hit table")
	baselinePath := fs.String("baseline", "",
		"baseline file of known divergences; the summary then partitions differences into known and new")
	testSteps := fs.Int("test-steps", 0, "per-test emulator step budget (0 = default)")
	testTimeout := fs.Duration("test-timeout", 0, "per-test wall-clock budget (0 = unlimited)")
	stageTimeout := fs.Duration("stage-timeout", 0,
		"per-stage deadline; units still queued at the deadline are skipped and ledgered as degraded (0 = unlimited)")
	faultSpec := fs.String("faults", "",
		"fault-injection spec, e.g. \"seed=7;corpus.write:p=0.2:err\" (overrides $"+faults.EnvVar+")")
	progress := fs.Bool("progress", false, "print per-stage progress to stderr as the campaign runs")
	pprofPrefix := fs.String("pprof", "",
		"write PREFIX.cpu.pprof and PREFIX.heap.pprof profiles of the campaign")
	hybridOn := fs.Bool("hybrid", false,
		"run the coverage-guided hybrid fuzzing stage after comparison")
	hybridBudget := fs.Int("hybrid-budget", 256,
		"mutated-input executions the hybrid stage spends (with -hybrid)")
	hybridSeed := fs.Int64("hybrid-seed", 0, "hybrid fuzzer RNG seed (0 = -seed)")
	hybridWorkers := fs.Int("hybrid-workers", 0,
		"hybrid mutator pool size (0 = -workers; never changes the report)")
	solverBatch := fs.Bool("solver-batch", true,
		"fold sibling path queries into incremental solving with shared assumption prefixes")
	fastpath := fs.Bool("fastpath", true,
		"use the Lo-Fi emulator's direct-dispatch fast path (off = IR-flavored slow path)")
	portfolio := fs.Int("portfolio", 0,
		"race N extra seeded solver clones per budgeted query (0 = off; deterministic)")
	solverSubsume := fs.Bool("solver-subsume", true,
		"answer sibling path queries whose assumptions hold under the last Sat model without solving")
	reduceDB := fs.Bool("reduce-db", true,
		"periodically drop high-LBD learned clauses from the SAT core (off = keep every learned clause)")
	restartBase := fs.Int("restart-base", 0,
		"Luby restart unit for the SAT core (0 = default 100)")
	vote := fs.Bool("vote", false,
		"run every test on lento too and vote the three emulators into per-test verdicts with a blame column")
	fs.Parse(args)

	if err := validateCampaignFlags(*workers, *exploreWorkers, *cap, *instrs, *maxSteps, *testSteps, *testTimeout, *stageTimeout); err != nil {
		die(err)
	}
	if *portfolio < 0 {
		die(fmt.Errorf("-portfolio must be >= 0, got %d", *portfolio))
	}
	if *restartBase < 0 {
		die(fmt.Errorf("-restart-base must be >= 0, got %d", *restartBase))
	}
	if err := validateHybridFlags(*hybridOn, *hybridBudget, *hybridWorkers); err != nil {
		die(err)
	}
	if *faultSpec != "" {
		if _, err := faults.ArmSpec(*faultSpec); err != nil {
			die(err)
		}
	}
	if *pprofPrefix != "" {
		stopProf, err := startProfiles(*pprofPrefix)
		if err != nil {
			die(err)
		}
		defer stopProf()
	}

	cfg := campaign.Config{
		MaxPathsPerInstr: *cap,
		MaxInstrs:        *instrs,
		Seed:             *seed,
		Workers:          *workers,
		ExploreWorkers:   *exploreWorkers,
		MaxSteps:         *maxSteps,
		CorpusDir:        *corpusDir,
		NoCache:          *noCache,
		Resume:           *resume,
		TestMaxSteps:     *testSteps,
		TestTimeout:      *testTimeout,
		StageTimeout:     *stageTimeout,
		NoSolverBatch:    !*solverBatch,
		NoFastPath:       !*fastpath,
		Portfolio:        *portfolio,
		NoSubsume:        !*solverSubsume,
		NoReduceDB:       !*reduceDB,
		RestartBase:      *restartBase,
		Vote:             *vote,
	}
	if *hybridOn {
		cfg.Hybrid = campaign.HybridConfig{
			Budget:         *hybridBudget,
			Seed:           *hybridSeed,
			MutatorWorkers: *hybridWorkers,
		}
	}
	if *handlers != "" {
		cfg.Handlers = strings.Split(*handlers, ",")
	}
	if *baselinePath != "" {
		bl, err := triage.LoadBaseline(*baselinePath)
		if err != nil {
			die(err)
		}
		if bl == nil {
			bl = triage.NewBaseline()
		}
		cfg.Baseline = bl
	}
	if *progress {
		cfg.Progress = progressPrinter(os.Stderr)
	}
	// Ctrl-C / SIGTERM cancels the campaign promptly; with -corpus -resume,
	// finished tests are already checkpointed, so re-running the same
	// command picks up where the interrupted run stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := campaign.RunContext(ctx, cfg)
	if err != nil {
		die(err)
	}
	fmt.Print(res.Summary())
	if *timing {
		fmt.Println()
		fmt.Print(res.TimingTable())
	}
}

// cmdTriage runs a campaign and triages its divergences: baseline partition,
// clustering, optional ddmin minimization, optional baseline update, and the
// CI gate. With -diff it instead compares two saved report files.
func cmdTriage(args []string) {
	fs := flag.NewFlagSet("triage", flag.ExitOnError)
	instrs := fs.Int("instrs", 0, "max unique instructions (0 = all)")
	cap := fs.Int("cap", 256, "paths per instruction")
	handlers := fs.String("handlers", "", "comma-separated handler keys")
	seed := fs.Int64("seed", 1, "exploration seed")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers (campaign and minimization)")
	exploreWorkers := fs.Int("explore-workers", 0,
		"workers inside each instruction's symbolic exploration (0 or 1 = sequential)")
	maxSteps := fs.Int("maxsteps", 0, "per-path IR step cap (0 = default)")
	corpusDir := fs.String("corpus", "", "persistent test corpus directory; also caches minimized cases")
	resume := fs.Bool("resume", false, "also cache and reuse per-test execution outcomes")
	noCache := fs.Bool("no-cache", false, "ignore cached artifacts (still refreshes the corpus)")
	testSteps := fs.Int("test-steps", 0, "per-test emulator step budget (0 = default)")
	timing := fs.Bool("timing", false, "append the campaign timing and cache-hit table")
	progress := fs.Bool("progress", false, "print per-stage progress to stderr")
	solverBatch := fs.Bool("solver-batch", true,
		"fold sibling path queries into incremental solving with shared assumption prefixes")
	fastpath := fs.Bool("fastpath", true,
		"use the Lo-Fi emulator's direct-dispatch fast path (off = IR-flavored slow path)")
	solverSubsume := fs.Bool("solver-subsume", true,
		"answer sibling path queries whose assumptions hold under the last Sat model without solving")
	reduceDB := fs.Bool("reduce-db", true,
		"periodically drop high-LBD learned clauses from the SAT core (off = keep every learned clause)")

	baselinePath := fs.String("baseline", "",
		"baseline file of known divergences (\"\" or missing file = everything is new)")
	minimize := fs.Bool("minimize", false, "ddmin-shrink every divergent case, preserving its signature")
	budget := fs.Int("budget", 0, "oracle-run budget per minimized case (0 = default)")
	updateBaseline := fs.Bool("update-baseline", false,
		"merge this run's clusters into -baseline and save it")
	jsonOut := fs.String("json", "", "write the triage report JSON to FILE")
	diffMode := fs.Bool("diff", false, "diff two saved reports: pokeemu triage -diff OLD.json NEW.json")
	gate := fs.Bool("gate", false,
		"exit 1 on any new divergence (run mode) or any delta (-diff mode)")
	fs.Parse(args)

	if *diffMode {
		rest := fs.Args()
		if len(rest) != 2 {
			die(fmt.Errorf("triage -diff needs exactly two report files (got %d)", len(rest)))
		}
		oldRep, err := loadReport(rest[0])
		if err != nil {
			die(err)
		}
		newRep, err := loadReport(rest[1])
		if err != nil {
			die(err)
		}
		d := triage.DiffReports(oldRep, newRep)
		fmt.Print(d.Render())
		if *gate && !d.Empty() {
			os.Exit(1)
		}
		return
	}
	if *updateBaseline && *baselinePath == "" {
		die(fmt.Errorf("-update-baseline needs -baseline FILE"))
	}

	var bl *triage.Baseline
	if *baselinePath != "" {
		var err error
		if bl, err = triage.LoadBaseline(*baselinePath); err != nil {
			die(err)
		}
	}
	cfg := campaign.Config{
		MaxPathsPerInstr: *cap,
		MaxInstrs:        *instrs,
		Seed:             *seed,
		Workers:          *workers,
		ExploreWorkers:   *exploreWorkers,
		MaxSteps:         *maxSteps,
		CorpusDir:        *corpusDir,
		NoCache:          *noCache,
		Resume:           *resume,
		TestMaxSteps:     *testSteps,
		Baseline:         bl,
		NoSolverBatch:    !*solverBatch,
		NoFastPath:       !*fastpath,
		NoSubsume:        !*solverSubsume,
		NoReduceDB:       !*reduceDB,
	}
	if cfg.Baseline == nil && *baselinePath != "" {
		cfg.Baseline = triage.NewBaseline()
	}
	if *handlers != "" {
		cfg.Handlers = strings.Split(*handlers, ",")
	}
	if *progress {
		cfg.Progress = progressPrinter(os.Stderr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := campaign.RunContext(ctx, cfg)
	if err != nil {
		die(err)
	}

	opts := triage.Options{
		Minimize:     *minimize,
		Budget:       *budget,
		TestMaxSteps: *testSteps,
		Workers:      *workers,
		Baseline:     bl,
	}
	if *corpusDir != "" && !*noCache {
		// The triage cache rides in the same corpus; an unusable corpus just
		// means uncached minimization, exactly like the campaign's fallback.
		if crp, err := corpus.Open(*corpusDir); err == nil {
			opts.Corpus = crp
		}
	}
	rep, err := triage.Run(res.TriageCases, opts)
	if err != nil {
		die(err)
	}

	fmt.Print(res.Summary())
	fmt.Println()
	fmt.Print(rep.Render())
	if *timing {
		fmt.Println()
		fmt.Print(res.TimingTable())
	}
	if *jsonOut != "" {
		data, err := rep.Encode()
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			die(err)
		}
	}
	if *updateBaseline {
		if bl == nil {
			bl = triage.NewBaseline()
		}
		added := bl.Update(rep)
		if err := bl.Save(*baselinePath); err != nil {
			die(err)
		}
		fmt.Printf("baseline: %s updated (%d clusters added, %d total)\n",
			*baselinePath, added, bl.Len())
	}
	if *gate && rep.New > 0 {
		fmt.Fprintf(os.Stderr, "pokeemu: triage gate: %d new divergent tests (%d new clusters)\n",
			rep.New, rep.NewCluster)
		os.Exit(1)
	}
}

// loadReport reads a saved triage report JSON file.
func loadReport(path string) (*triage.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return triage.DecodeReport(data)
}

// startProfiles begins a CPU profile at prefix.cpu.pprof and returns a stop
// function that finishes it and writes a heap profile to prefix.heap.pprof.
func startProfiles(prefix string) (func(), error) {
	cpuF, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		heapF, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pokeemu: heap profile:", err)
			return
		}
		defer heapF.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			fmt.Fprintln(os.Stderr, "pokeemu: heap profile:", err)
		}
	}, nil
}

// validateCampaignFlags rejects flag values that would hang or silently
// misbehave (a non-positive worker count, negative caps and budgets).
func validateCampaignFlags(workers, exploreWorkers, cap, instrs, maxSteps, testSteps int, testTimeout, stageTimeout time.Duration) error {
	switch {
	case workers <= 0:
		return fmt.Errorf("-workers must be >= 1 (got %d)", workers)
	case exploreWorkers < 0:
		return fmt.Errorf("-explore-workers must be >= 0 (got %d)", exploreWorkers)
	case cap <= 0:
		return fmt.Errorf("-cap must be >= 1 (got %d)", cap)
	case instrs < 0:
		return fmt.Errorf("-instrs must be >= 0 (got %d)", instrs)
	case maxSteps < 0:
		return fmt.Errorf("-maxsteps must be >= 0 (got %d)", maxSteps)
	case testSteps < 0:
		return fmt.Errorf("-test-steps must be >= 0 (got %d)", testSteps)
	case testTimeout < 0:
		return fmt.Errorf("-test-timeout must be >= 0 (got %v)", testTimeout)
	case stageTimeout < 0:
		return fmt.Errorf("-stage-timeout must be >= 0 (got %v)", stageTimeout)
	}
	return nil
}

func validateHybridFlags(on bool, budget, workers int) error {
	switch {
	case on && budget <= 0:
		return fmt.Errorf("-hybrid-budget must be >= 1 (got %d)", budget)
	case workers < 0:
		return fmt.Errorf("-hybrid-workers must be >= 0 (got %d)", workers)
	}
	return nil
}

// progressPrinter renders campaign progress events as throttled stderr
// lines: every stage entry, every ~5% of a stage, and the stage's end.
func progressPrinter(w io.Writer) func(campaign.Event) {
	var mu sync.Mutex
	return func(ev campaign.Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Total == 0 {
			return
		}
		step := ev.Total / 20
		if step < 1 {
			step = 1
		}
		if ev.Done == 0 || ev.Done == ev.Total || ev.Done%step == 0 {
			fmt.Fprintf(w, "pokeemu: %-8s %*d/%d %s\n",
				ev.Stage, len(fmt.Sprint(ev.Total)), ev.Done, ev.Total, ev.Key)
		}
	}
}

func cmdRandom(args []string) {
	fs := flag.NewFlagSet("random", flag.ExitOnError)
	tests := fs.Int("tests", 1000, "number of random tests")
	fuzz := fs.Bool("fuzz", true, "randomize register state")
	seed := fs.Int64("seed", 1, "rng seed")
	fs.Parse(args)

	res := randtest.Run(randtest.Config{Tests: *tests, Seed: *seed, FuzzState: *fuzz})
	fmt.Printf("random testing: %d generated, %d valid, %d executed, %d with differences\n",
		res.Generated, res.Valid, res.Executed, res.DiffTests)
	causes := make([]string, 0, len(res.RootCauses))
	for c := range res.RootCauses {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		fmt.Printf("  %-55s %6d\n", c, res.RootCauses[c])
	}
}
