// Command pokeemud is the long-running campaign service: an HTTP daemon
// that accepts cross-validation campaigns as JSON jobs, runs them on a
// bounded scheduler (max concurrent jobs × workers per job), and shares one
// on-disk corpus across every job, so warm submissions skip exploration and
// generation that any earlier job already paid for.
//
// Usage:
//
//	pokeemud [-addr HOST:PORT] [-corpus DIR] [-max-jobs N] [-max-queue N]
//	         [-workers-per-job N] [-drain D] [-pprof]
//	pokeemud -smoke
//
// API (see the README for curl recipes):
//
//	POST   /v1/campaigns                   submit a campaign config; 202 + job
//	GET    /v1/campaigns                   list jobs
//	GET    /v1/campaigns/{id}              status + live progress
//	DELETE /v1/campaigns/{id}              cancel a queued or running job
//	GET    /v1/campaigns/{id}/report      deterministic report + timing table
//	GET    /v1/campaigns/{id}/divergences  per-test differences with root causes
//	GET    /v1/campaigns/{id}/triage       triage report (?minimize=1&budget=N)
//	GET    /v1/baseline                    the service-wide known-divergence baseline
//	PUT    /v1/baseline                    replace the baseline (and persist it)
//	GET    /healthz                        liveness + job gauges
//	GET    /metrics                        counters and latency/size histograms
//
// SIGINT/SIGTERM drain gracefully: running jobs get -drain to finish, then
// are canceled; with "resume" set, a canceled job's completed tests are
// already checkpointed in the corpus, so resubmitting the same config
// continues where it stopped.
//
// -smoke starts the daemon on an ephemeral port, drives one tiny campaign
// through the HTTP API end to end (submit → poll → report → metrics), then
// repeats the round-trip with a deterministic corpus-write fault armed and
// requires an explicit degraded report plus a degraded /healthz — never a
// silently short report. It shuts down gracefully and exits 0 on success;
// this is the self-contained health gate `make smoke` runs in CI.
//
// The POKEEMU_FAULTS environment variable arms the deterministic
// fault-injection registry for the whole daemon (chaos runs), e.g.
// POKEEMU_FAULTS="seed=7;corpus.write:p=0.1:err" pokeemud.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ handlers, served behind -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pokeemu/internal/faults"
	"pokeemu/internal/service"
)

func main() {
	if spec := os.Getenv(faults.EnvVar); spec != "" {
		if _, err := faults.ArmSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "pokeemud: %s: %v\n", faults.EnvVar, err)
			os.Exit(2)
		}
	}
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	corpusDir := flag.String("corpus", ".pokeemud-corpus", "shared corpus directory (\"\" disables the corpus)")
	maxJobs := flag.Int("max-jobs", 2, "max concurrently running campaigns")
	maxQueue := flag.Int("max-queue", 64, "max queued jobs before submissions get 503")
	workersPerJob := flag.Int("workers-per-job", runtime.NumCPU(), "worker cap (and default) per campaign")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown window before running jobs are checkpoint-canceled")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
	smoke := flag.Bool("smoke", false, "run the self-contained smoke test and exit")
	flag.Parse()

	if *maxJobs <= 0 || *maxQueue <= 0 || *workersPerJob <= 0 || *drain < 0 {
		fmt.Fprintln(os.Stderr, "pokeemud: -max-jobs, -max-queue, -workers-per-job must be >= 1 and -drain >= 0")
		os.Exit(2)
	}

	if *smoke {
		os.Exit(runSmoke())
	}

	srv, err := service.New(service.Options{
		CorpusDir:        *corpusDir,
		MaxJobs:          *maxJobs,
		MaxQueue:         *maxQueue,
		MaxWorkersPerJob: *workersPerJob,
		DrainTimeout:     *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pokeemud:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pokeemud:", err)
		os.Exit(1)
	}
	var handler http.Handler = srv.Handler()
	if *pprofOn {
		// net/http/pprof registers on http.DefaultServeMux at import; route
		// /debug/pprof/ there and everything else to the service.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "pokeemud: serve:", err)
			os.Exit(1)
		}
	}()
	fmt.Printf("pokeemud: listening on http://%s (corpus %q, %d job slots × %d workers)\n",
		ln.Addr(), *corpusDir, *maxJobs, *workersPerJob)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Printf("pokeemud: draining (up to %v) ...\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "pokeemud: job drain:", err)
	}
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "pokeemud: http shutdown:", err)
	}
	fmt.Println("pokeemud: stopped")
}

// runSmoke boots a real daemon on an ephemeral port, exercises the whole
// job lifecycle over HTTP, and tears it down. Output goes to stdout; any
// failure returns 1.
func runSmoke() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pokeemud: smoke: "+format+"\n", args...)
		return 1
	}
	dir, err := os.MkdirTemp("", "pokeemud-smoke-*")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir)

	srv, err := service.New(service.Options{
		CorpusDir:    dir,
		MaxJobs:      1,
		DrainTimeout: time.Minute,
	})
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("pokeemud: smoke: daemon up at %s\n", base)

	get := func(path string, out any) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	if code, err := get("/healthz", nil); err != nil || code != 200 {
		return fail("healthz = %d, %v", code, err)
	}

	body := `{"handlers":["push_r"],"path_cap":8,"resume":true}`
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		return fail("submit: %v", err)
	}
	var st service.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 202 {
		return fail("submit = %d, %v", resp.StatusCode, err)
	}
	fmt.Printf("pokeemud: smoke: submitted %s\n", st.ID)
	firstID := st.ID

	t0 := time.Now()
	for st.State != service.StateDone {
		if st.State == service.StateFailed || st.State == service.StateCanceled {
			return fail("job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		if time.Since(t0) > 2*time.Minute {
			return fail("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
		if code, err := get("/v1/campaigns/"+st.ID, &st); err != nil || code != 200 {
			return fail("poll = %d, %v", code, err)
		}
	}

	var rep service.Report
	if code, err := get("/v1/campaigns/"+st.ID+"/report", &rep); err != nil || code != 200 {
		return fail("report = %d, %v", code, err)
	}
	if rep.TotalTests == 0 || rep.Summary == "" {
		return fail("report is empty: %+v", rep)
	}
	var m service.MetricsSnapshot
	if code, err := get("/metrics", &m); err != nil || code != 200 {
		return fail("metrics = %d, %v", code, err)
	}
	if m.Jobs.Completed != 1 || m.Tests.Reported != int64(rep.TotalTests) {
		return fail("metrics out of step: %+v", m.Jobs)
	}

	// Second round-trip under chaos: with every corpus write failing, a cold
	// job (different handler, so nothing is cached) must still complete, but
	// with an explicit degraded section and a degraded health status.
	if _, err := faults.ArmSpec("seed=7;corpus.write:p=1:err"); err != nil {
		return fail("arm faults: %v", err)
	}
	defer faults.Disarm()
	resp, err = http.Post(base+"/v1/campaigns", "application/json",
		strings.NewReader(`{"handlers":["leave"],"path_cap":8}`))
	if err != nil {
		return fail("chaos submit: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 202 {
		return fail("chaos submit = %d, %v", resp.StatusCode, err)
	}
	fmt.Printf("pokeemud: smoke: submitted %s with corpus-write faults armed\n", st.ID)
	t1 := time.Now()
	for st.State != service.StateDone {
		if st.State == service.StateFailed || st.State == service.StateCanceled {
			return fail("chaos job %s ended %s: %s (injected I/O faults must degrade, not fail)",
				st.ID, st.State, st.Error)
		}
		if time.Since(t1) > 2*time.Minute {
			return fail("chaos job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
		if code, err := get("/v1/campaigns/"+st.ID, &st); err != nil || code != 200 {
			return fail("chaos poll = %d, %v", code, err)
		}
	}
	var drep service.Report
	if code, err := get("/v1/campaigns/"+st.ID+"/report", &drep); err != nil || code != 200 {
		return fail("chaos report = %d, %v", code, err)
	}
	if drep.TotalTests == 0 {
		return fail("chaos report lost its tests: %+v", drep)
	}
	if drep.Degraded == nil || drep.Degraded.CorpusWrites == 0 ||
		!strings.Contains(drep.Summary, "degraded:") {
		return fail("chaos report hides the injected write faults: %+v", drep.Degraded)
	}
	var h service.Health
	if code, err := get("/healthz", &h); err != nil || code != 200 {
		return fail("chaos healthz = %d, %v", code, err)
	}
	if h.Status != "degraded" || h.Degraded == nil || h.Degraded.JobsDegraded != 1 {
		return fail("healthz does not surface the degraded job: %+v", h)
	}
	faults.Disarm()
	if code, err := get("/metrics", &m); err != nil || code != 200 {
		return fail("metrics = %d, %v", code, err)
	}
	if m.Jobs.Completed != 2 {
		return fail("chaos job not counted completed: %+v", m.Jobs)
	}
	fmt.Printf("pokeemud: smoke: chaos round-trip ok (%s: %d tests, %d degraded units)\n",
		st.ID, drep.TotalTests, drep.Degraded.Units)

	// Triage round-trip: minimize the chaos job's divergences, record the
	// suggested baseline, and prove a re-run against it reports zero new
	// divergences — the CI regression gate, end to end over HTTP.
	var trip service.TriageResponse
	if code, err := get("/v1/campaigns/"+st.ID+"/triage?minimize=1", &trip); err != nil || code != 200 {
		return fail("triage = %d, %v", code, err)
	}
	if trip.Report == nil || trip.Report.New == 0 || trip.SuggestedBaseline == nil {
		return fail("triage found no new divergences to baseline: %+v", trip.Report)
	}
	for _, c := range trip.Report.Cases {
		if c.Minimized == nil || !c.Minimized.Reproduced {
			return fail("triage case %s did not reproduce under minimization", c.TestID)
		}
		if c.Minimized.FinalBytes > c.Minimized.OrigBytes {
			return fail("triage case %s grew: %d -> %d bytes",
				c.TestID, c.Minimized.OrigBytes, c.Minimized.FinalBytes)
		}
	}
	blBody, err := json.Marshal(trip.SuggestedBaseline)
	if err != nil {
		return fail("encode baseline: %v", err)
	}
	putReq, err := http.NewRequest(http.MethodPut, base+"/v1/baseline", strings.NewReader(string(blBody)))
	if err != nil {
		return fail("baseline put: %v", err)
	}
	resp, err = http.DefaultClient.Do(putReq)
	if err != nil {
		return fail("baseline put: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fail("baseline put = %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/campaigns", "application/json",
		strings.NewReader(`{"handlers":["leave"],"path_cap":8}`))
	if err != nil {
		return fail("baselined submit: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 202 {
		return fail("baselined submit = %d, %v", resp.StatusCode, err)
	}
	t2 := time.Now()
	for st.State != service.StateDone {
		if st.State == service.StateFailed || st.State == service.StateCanceled {
			return fail("baselined job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		if time.Since(t2) > 2*time.Minute {
			return fail("baselined job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(50 * time.Millisecond)
		if code, err := get("/v1/campaigns/"+st.ID, &st); err != nil || code != 200 {
			return fail("baselined poll = %d, %v", code, err)
		}
	}
	var brep service.Report
	if code, err := get("/v1/campaigns/"+st.ID+"/report", &brep); err != nil || code != 200 {
		return fail("baselined report = %d, %v", code, err)
	}
	if brep.Baseline == nil || !strings.Contains(brep.Summary, "baseline:") {
		return fail("baselined report has no baseline partition: %+v", brep.Baseline)
	}
	if brep.Baseline.New != 0 {
		return fail("baselined re-run still reports %d new divergences", brep.Baseline.New)
	}
	var btrip service.TriageResponse
	if code, err := get("/v1/campaigns/"+st.ID+"/triage?minimize=1", &btrip); err != nil || code != 200 {
		return fail("baselined triage = %d, %v", code, err)
	}
	if btrip.Report.New != 0 || btrip.Report.Known != btrip.Report.Total {
		return fail("baselined triage not fully suppressed: new %d of %d",
			btrip.Report.New, btrip.Report.Total)
	}
	fmt.Printf("pokeemud: smoke: triage round-trip ok (%s: %d known, 0 new after baseline)\n",
		st.ID, btrip.Report.Known)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fail("http shutdown: %v", err)
	}
	fmt.Printf("pokeemud: smoke: ok (%s: %d tests, %d lo-fi diffs, %v)\n",
		firstID, rep.TotalTests, rep.LoFiDiffTests, time.Since(t0).Round(time.Millisecond))
	return 0
}
