# Standard checks for the PokeEMU reproduction. `make check` is the full
# gate: build, vet, tests, the race detector over every package, and the
# daemon smoke run.

GO ?= go
FUZZTIME ?= 30s
SERVE_ADDR ?= 127.0.0.1:8344
SERVE_CORPUS ?= .pokeemud-corpus

.PHONY: build vet test race fuzz bench serve smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign package runs multi-second integration tests; under the race
# detector they slow by ~10x, hence the generous timeout.
race:
	$(GO) test -race -timeout 30m ./...

# The three native fuzz targets: the instruction decoder's structural
# invariants, the expression simplifier's soundness, and the bit-blaster
# vs evaluator semantics oracle.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/x86
	$(GO) test -fuzz=FuzzExprSimplify -fuzztime=$(FUZZTIME) ./internal/expr
	$(GO) test -fuzz=FuzzSemanticsOracle -fuzztime=$(FUZZTIME) ./internal/solver

bench:
	$(GO) test -bench=. -benchmem .

# Run the campaign daemon in the foreground (SIGINT/SIGTERM drain
# gracefully, checkpointing running jobs into the shared corpus).
serve:
	$(GO) run ./cmd/pokeemud -addr $(SERVE_ADDR) -corpus $(SERVE_CORPUS)

# Self-contained daemon health gate: boots pokeemud on an ephemeral port,
# submits a tiny campaign over HTTP, asserts every endpoint answers 200,
# and shuts down gracefully.
smoke:
	$(GO) run ./cmd/pokeemud -smoke

check: build vet test race smoke
