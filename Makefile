# Standard checks for the PokeEMU reproduction. `make check` is the full
# gate: build, vet, tests, the race detector over every package, the chaos
# matrix, and the daemon smoke run.

GO ?= go
FUZZTIME ?= 30s
CHAOS_SEEDS ?= 10
SERVE_ADDR ?= 127.0.0.1:8344
SERVE_CORPUS ?= .pokeemud-corpus

# Per-package statement-coverage floors enforced by `make cover`
# (package:floor pairs; floors sit a few points under current coverage so
# routine edits pass but a dropped test file fails).
COVER_FLOORS ?= triage:85 diff:90 equivcheck:85 coverage:90 hybrid:85 lento:90 solver:90

.PHONY: build vet test race fuzz chaos cover bench bench-gate serve smoke equivcheck hybrid vote solvercheck check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign package runs multi-second integration tests; under the race
# detector they slow by ~10x, hence the generous timeout.
race:
	$(GO) test -race -timeout 30m ./...

# The ten native fuzz targets: the instruction decoder's structural
# invariants, the expression simplifier's soundness, the bit-blaster vs
# evaluator semantics oracle, the SAT core's arena-compaction integrity and
# restart determinism, the fault-injection spec parser, the triage
# minimizer's shrink/signature-preservation invariants, the equivcheck
# verdict vs concrete-differential oracle, the hybrid mutator's
# atom-discipline/aliasing/determinism invariants, and the lento
# interpreter vs evaluator/bit-blaster ALU oracle.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/x86
	$(GO) test -fuzz=FuzzExprSimplify -fuzztime=$(FUZZTIME) ./internal/expr
	$(GO) test -fuzz=FuzzSemanticsOracle -fuzztime=$(FUZZTIME) ./internal/solver
	$(GO) test -fuzz=FuzzArenaCompact -fuzztime=$(FUZZTIME) ./internal/solver
	$(GO) test -fuzz=FuzzLubyRestart -fuzztime=$(FUZZTIME) ./internal/solver
	$(GO) test -fuzz=FuzzFaultSpec -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -fuzz=FuzzTriageMinimize -fuzztime=$(FUZZTIME) ./internal/triage
	$(GO) test -fuzz=FuzzVsOracle -fuzztime=$(FUZZTIME) ./internal/equivcheck
	$(GO) test -fuzz=FuzzMutator -fuzztime=$(FUZZTIME) ./internal/hybrid
	$(GO) test -fuzz=FuzzLentoVsEval -fuzztime=$(FUZZTIME) ./internal/lento

# Chaos gate: the fault-injection matrix under the race detector, sweeping
# a fixed seed range (CHAOS_SEEDS plans per fault mix). Every armed fault
# must degrade the campaign deterministically — byte-identical reports
# across worker counts — never hang it, crash it, or shorten its report.
chaos:
	$(GO) test -race -timeout 30m -run 'TestChaos' ./internal/campaign -chaos-seeds=$(CHAOS_SEEDS)
	$(GO) test -race -run 'TestSchedulerFault|TestDegradedReport' ./internal/service

# Coverage gate: measure statement coverage for each package listed in
# COVER_FLOORS and fail if any falls below its floor.
cover:
	@set -e; for pair in $(COVER_FLOORS); do \
		pkg=$${pair%%:*}; floor=$${pair##*:}; \
		profile=$$(mktemp); \
		$(GO) test -coverprofile=$$profile ./internal/$$pkg >/dev/null; \
		pct=$$($(GO) tool cover -func=$$profile | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		rm -f $$profile; \
		echo "cover: internal/$$pkg $$pct% (floor $$floor%)"; \
		awk "BEGIN { exit !($$pct >= $$floor) }" || \
			{ echo "cover: internal/$$pkg below floor" >&2; exit 1; }; \
	done

bench:
	$(GO) test -bench=. -benchmem .

# Performance gate: one cold E11 benchmark run must land within
# BENCH_TOLERANCE percent of the checked-in w1-ms baseline, so a solver or
# dispatch change that silently gives back the fast-path/batching win fails
# the build the same way a broken test does. The band absorbs shared-host
# noise while still catching a slide back toward the pre-fast-path cost
# (37.2s seed vs the current baseline). Re-baseline by putting a fresh
# quiet-machine measurement in bench_baseline.txt.
BENCH_TOLERANCE ?= 35

bench-gate:
	@set -e; \
	base=$$(awk '$$1 == "w1-ms" {print $$2}' bench_baseline.txt); \
	[ -n "$$base" ] || { echo "bench-gate: no w1-ms entry in bench_baseline.txt" >&2; exit 1; }; \
	out=$$($(GO) test -run xxx -bench BenchmarkE11ColdExplore -benchtime 1x .); \
	echo "$$out"; \
	w1=$$(echo "$$out" | awk '{for (i = 1; i < NF; i++) if ($$(i+1) == "w1-ms") print $$i}'); \
	[ -n "$$w1" ] || { echo "bench-gate: no w1-ms metric in benchmark output" >&2; exit 1; }; \
	ceil=$$(awk "BEGIN { printf \"%d\", $$base * (100 + $(BENCH_TOLERANCE)) / 100 }"); \
	echo "bench-gate: w1-ms $$w1 (baseline $$base, ceiling $$ceil)"; \
	awk "BEGIN { exit !($$w1 <= $$ceil) }" || \
		{ echo "bench-gate: w1-ms $$w1 exceeds ceiling $$ceil" >&2; exit 1; }

# Run the campaign daemon in the foreground (SIGINT/SIGTERM drain
# gracefully, checkpointing running jobs into the shared corpus).
serve:
	$(GO) run ./cmd/pokeemud -addr $(SERVE_ADDR) -corpus $(SERVE_CORPUS)

# Self-contained daemon health gate: boots pokeemud on an ephemeral port,
# submits a tiny campaign over HTTP, asserts every endpoint answers 200,
# and shuts down gracefully.
smoke:
	$(GO) run ./cmd/pokeemud -smoke

# Symbolic disequivalence gate: prove the seeded handler subset under a
# pinned budget. Any UNKNOWN or any DIVERGES outside the pinned known set
# (the alias-encoding findings) fails the build.
equivcheck:
	$(GO) run ./cmd/pokeemu equivcheck -handlers gate -budget 200 \
		-gate -known internal/equivcheck/testdata/known_diverges.json

# Hybrid smoke gate: the short seeded coverage-guided fuzzing run pinned
# against its report golden, plus the worker-count determinism tests, all
# under the race detector.
hybrid:
	$(GO) test -race -timeout 30m -run 'TestHybrid' ./internal/campaign ./internal/hybrid ./internal/service
	$(GO) test -race -run 'TestRunDeterministic|TestRunWithReseed' ./internal/hybrid

# Voting gate: the three-emulator majority-vote campaign pinned against its
# report golden, the blame-acceptance property (every majority verdict over
# the gate handler set blames celer, never fidelis or lento), worker-count
# determinism, and the vote-off byte-format guarantee — plus the diff-layer
# verdict unit tests, all under the race detector.
vote:
	$(GO) test -race -timeout 30m -run 'TestVote' ./internal/campaign ./internal/diff

# Solver self-verification gate: the differential harness (production CDCL
# configurations vs a frozen reference configuration vs an independent DPLL
# solver, over seeded random CNF and replayed campaign query workloads)
# under the race detector, with debug-build model validation switched on.
solvercheck:
	$(GO) test -race -timeout 10m ./internal/solver/...

check: build vet test race chaos cover smoke equivcheck hybrid vote solvercheck bench-gate
