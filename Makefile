# Standard checks for the PokeEMU reproduction. `make check` is the full
# gate: build, vet, tests, and the race detector over every package.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build vet test race fuzz bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign package runs multi-second integration tests; under the race
# detector they slow by ~10x, hence the generous timeout.
race:
	$(GO) test -race -timeout 30m ./...

# The two native fuzz targets: the instruction decoder's structural
# invariants and the expression simplifier's soundness.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/x86
	$(GO) test -fuzz=FuzzExprSimplify -fuzztime=$(FUZZTIME) ./internal/expr

bench:
	$(GO) test -bench=. -benchmem .

check: build vet test race
