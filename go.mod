module pokeemu

go 1.22
